//! Extension: the encoder–decoder ("vanilla") transformer of §2.1 — the
//! third model class the paper's background defines but its evaluation
//! omits.
//!
//! A decoder layer contains *two* attention blocks: causal self-attention
//! over the target sequence and **cross-attention** whose queries come from
//! the decoder but whose K/V come from the encoder output — a rectangular
//! `L_tgt × L_src` attention matrix. Softmax recomposition applies to both
//! unchanged: the LS tiling only cares about the attention matrix's tile
//! structure, not its squareness.

use crate::engine::RunReport;
use crate::schedule::{RunParams, SoftmaxStrategy};
use resoftmax_gpusim::{DeviceSpec, Gpu, KernelCategory, KernelDesc, LaunchError};
use resoftmax_kernels::costs::{common, dense, AttnDims};
use serde::{Deserialize, Serialize};

/// An encoder–decoder transformer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seq2SeqConfig {
    /// Display name.
    pub name: String,
    /// Encoder layer count.
    pub encoder_layers: usize,
    /// Decoder layer count.
    pub decoder_layers: usize,
    /// Hidden size.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// FeedForward inner size.
    pub d_ff: usize,
}

impl Seq2SeqConfig {
    /// The original "Attention is All You Need" big model: 6+6 layers,
    /// `D_m` 1024, 16 heads, `D_ff` 4096.
    pub fn vanilla_transformer_big() -> Self {
        Seq2SeqConfig {
            name: "Transformer-big".into(),
            encoder_layers: 6,
            decoder_layers: 6,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
        }
    }

    /// Per-head size.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }
}

fn attention_block(
    dims: &AttnDims,
    params: &RunParams,
    prefix: &str,
    kernels: &mut Vec<KernelDesc>,
) {
    let tile = params.tile;
    match params.strategy {
        SoftmaxStrategy::OnlineFused => {
            kernels.push(dense::fused_mha_online(dims, tile, prefix));
        }
        SoftmaxStrategy::Baseline => {
            kernels.push(dense::matmul_qk(
                dims,
                tile,
                prefix,
                dense::QkEpilogue::ScaleMask,
            ));
            kernels.push(dense::softmax_monolithic(dims, prefix, "scores"));
            kernels.push(dense::matmul_pv(
                dims,
                tile,
                prefix,
                dense::PvPrologue::None,
            ));
        }
        SoftmaxStrategy::Decomposed => {
            kernels.push(dense::matmul_qk(
                dims,
                tile,
                prefix,
                dense::QkEpilogue::ScaleMask,
            ));
            kernels.push(dense::local_softmax(dims, tile.n, prefix, "scores"));
            kernels.push(dense::inter_reduction(dims, tile.n, prefix));
            kernels.push(dense::global_scaling(dims, tile.n, prefix));
            kernels.push(dense::matmul_pv(
                dims,
                tile,
                prefix,
                dense::PvPrologue::None,
            ));
        }
        SoftmaxStrategy::Recomposed | SoftmaxStrategy::RecomposedFp16 => {
            kernels.push(dense::matmul_qk(
                dims,
                tile,
                prefix,
                match params.strategy {
                    SoftmaxStrategy::RecomposedFp16 => {
                        dense::QkEpilogue::ScaleMaskLocalSoftmaxF16Acc
                    }
                    _ => dense::QkEpilogue::ScaleMaskLocalSoftmax,
                },
            ));
            kernels.push(dense::inter_reduction(dims, tile.n, prefix));
            kernels.push(dense::matmul_pv(
                dims,
                tile,
                prefix,
                dense::PvPrologue::GlobalScaling,
            ));
        }
    }
}

fn fc_block(
    rows: usize,
    d_model: usize,
    d_ff: usize,
    prefix: &str,
    input: &str,
    kernels: &mut Vec<KernelDesc>,
) {
    kernels.push(common::fc(
        rows,
        d_model,
        d_model,
        KernelCategory::Fc,
        prefix,
        "attn_out",
        "proj",
        true,
    ));
    kernels.push(common::layernorm(rows, d_model, prefix, "proj", input));
    kernels.push(common::fc(
        rows,
        d_model,
        d_ff,
        KernelCategory::FeedForward,
        prefix,
        input,
        "ff1",
        true,
    ));
    kernels.push(common::fc(
        rows,
        d_ff,
        d_model,
        KernelCategory::FeedForward,
        prefix,
        "ff1",
        "ff2",
        false,
    ));
    kernels.push(common::layernorm(rows, d_model, prefix, "ff2", "out"));
}

/// Builds the schedule of one full encoder–decoder inference: the encoder
/// over `src_len` tokens, then the decoder over `tgt_len` tokens with causal
/// self-attention and cross-attention into the encoder output.
pub fn build_seq2seq_schedule(
    cfg: &Seq2SeqConfig,
    src_len: usize,
    tgt_len: usize,
    params: &RunParams,
) -> Vec<KernelDesc> {
    let mut kernels = Vec::new();
    let heads = cfg.heads;
    let d_head = cfg.d_head();
    let batch = params.batch;

    // Encoder.
    for layer in 0..cfg.encoder_layers {
        let prefix = format!("enc{layer}");
        for out in ["q", "k", "v"] {
            kernels.push(common::fc(
                src_len * batch,
                cfg.d_model,
                cfg.d_model,
                KernelCategory::Fc,
                &prefix,
                "x",
                out,
                true,
            ));
        }
        let dims = AttnDims::new(src_len, d_head, heads, batch);
        attention_block(&dims, params, &prefix, &mut kernels);
        fc_block(
            src_len * batch,
            cfg.d_model,
            cfg.d_ff,
            &prefix,
            "ln1",
            &mut kernels,
        );
    }

    // Decoder.
    for layer in 0..cfg.decoder_layers {
        // Causal self-attention over the target.
        let prefix = format!("dec{layer}.self");
        for out in ["q", "k", "v"] {
            kernels.push(common::fc(
                tgt_len * batch,
                cfg.d_model,
                cfg.d_model,
                KernelCategory::Fc,
                &prefix,
                "x",
                out,
                true,
            ));
        }
        let self_dims = AttnDims::new(tgt_len, d_head, heads, batch);
        attention_block(&self_dims, params, &prefix, &mut kernels);
        kernels.push(common::fc(
            tgt_len * batch,
            cfg.d_model,
            cfg.d_model,
            KernelCategory::Fc,
            &prefix,
            "attn_out",
            "proj",
            true,
        ));
        kernels.push(common::layernorm(
            tgt_len * batch,
            cfg.d_model,
            &prefix,
            "proj",
            "ln1",
        ));

        // Cross-attention: queries from the decoder, K/V from the encoder
        // output (§2.1's "two other inputs receiving the matrix produced
        // from the encoder") — a rectangular tgt_len × src_len matrix.
        let prefix = format!("dec{layer}.cross");
        kernels.push(common::fc(
            tgt_len * batch,
            cfg.d_model,
            cfg.d_model,
            KernelCategory::Fc,
            &prefix,
            "ln1",
            "q",
            true,
        ));
        for out in ["k", "v"] {
            kernels.push(common::fc(
                src_len * batch,
                cfg.d_model,
                cfg.d_model,
                KernelCategory::Fc,
                &prefix,
                "enc_out",
                out,
                true,
            ));
        }
        let cross_dims = AttnDims::cross(tgt_len, src_len, d_head, heads, batch);
        attention_block(&cross_dims, params, &prefix, &mut kernels);
        fc_block(
            tgt_len * batch,
            cfg.d_model,
            cfg.d_ff,
            &prefix,
            "ln2",
            &mut kernels,
        );
    }
    kernels
}

/// Simulates one encoder–decoder inference.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn run_seq2seq(
    cfg: &Seq2SeqConfig,
    src_len: usize,
    tgt_len: usize,
    params: &RunParams,
    device: DeviceSpec,
) -> Result<RunReport, LaunchError> {
    let schedule = build_seq2seq_schedule(cfg, src_len, tgt_len, params);
    let device_name = device.name.clone();
    let mut gpu = Gpu::new(device);
    gpu.run(&schedule)?;
    Ok(RunReport {
        model: cfg.name.clone(),
        device: device_name,
        params: params.clone(),
        timeline: gpu.into_timeline(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq2seq_runs_and_recomposition_helps() {
        let cfg = Seq2SeqConfig::vanilla_transformer_big();
        let (src, tgt) = (4096, 4096);
        let base = run_seq2seq(&cfg, src, tgt, &RunParams::new(src), DeviceSpec::a100()).unwrap();
        let sdf = run_seq2seq(
            &cfg,
            src,
            tgt,
            &RunParams::new(src).strategy(SoftmaxStrategy::Recomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        let speedup = base.total_time_s() / sdf.total_time_s();
        assert!(
            speedup > 1.15,
            "seq2seq SDF speedup {speedup} (3 attention blocks per enc+dec pair)"
        );
    }

    #[test]
    fn rectangular_cross_attention_scales_with_src_len() {
        // Growing only the source length should grow cross-attention cost
        // but leave decoder self-attention unchanged.
        let cfg = Seq2SeqConfig::vanilla_transformer_big();
        let short = run_seq2seq(&cfg, 1024, 2048, &RunParams::new(1024), DeviceSpec::a100())
            .unwrap()
            .total_time_s();
        let long = run_seq2seq(&cfg, 4096, 2048, &RunParams::new(1024), DeviceSpec::a100())
            .unwrap()
            .total_time_s();
        assert!(long > short * 1.5, "src 1k->4k: {short} -> {long}");
    }

    #[test]
    fn schedule_contains_both_attention_kinds() {
        let cfg = Seq2SeqConfig::vanilla_transformer_big();
        let ks = build_seq2seq_schedule(&cfg, 2048, 1024, &RunParams::new(2048));
        // decoder self-attention softmax rows = tgt (1024 wide),
        // cross-attention softmax rows = src-wide (2048)
        assert!(ks.iter().any(|k| k.name.contains("softmax(L=1024)")));
        assert!(ks
            .iter()
            .any(|k| k.name.contains("matmul_qk") && k.name.contains("L=1024")));
        // cross QK produces a 1024 x 2048 matrix: check its traffic
        let cross_qk = ks
            .iter()
            .find(|k| {
                k.category == KernelCategory::MatMulQk
                    && k.writes.iter().any(|b| b.id.starts_with("dec0.cross"))
            })
            .expect("cross attention QK");
        let expected = (1024 * 2048 * 2) as f64 * 16.0; // fp16 × heads
        assert!(
            (cross_qk.tbs.total_write_bytes() - expected).abs() / expected < 0.05,
            "cross attn matrix bytes {}",
            cross_qk.tbs.total_write_bytes()
        );
    }
}
