//! Property-based tests for the software binary16 implementation.

use proptest::prelude::*;
use resoftmax_fp16::{f16_bits_from_f32, ulp_distance, F16};

/// Strategy producing finite f32 values that exercise the full binary16 range
/// including overflow/underflow neighborhoods.
fn wide_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -70000.0f32..70000.0f32,
        -1.0f32..1.0f32,
        -1e-6f32..1e-6f32,
        Just(0.0),
        Just(-0.0),
        Just(65504.0),
        Just(-65504.0),
    ]
}

/// Strategy producing arbitrary binary16 bit patterns that are not NaN.
fn any_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_filter_map("NaN", |bits| {
        let x = F16::from_bits(bits);
        (!x.is_nan()).then_some(x)
    })
}

/// Strategy producing finite binary16 values.
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_filter_map("not finite", |bits| {
        let x = F16::from_bits(bits);
        x.is_finite().then_some(x)
    })
}

proptest! {
    /// f32 -> f16 is correctly rounded: the result is within half an ulp of
    /// the exact value (or the error equals exactly half an ulp on ties).
    #[test]
    fn conversion_is_nearest(x in wide_f32()) {
        let h = F16::from_f32(x);
        if h.is_finite() {
            let err = (h.to_f64() - x as f64).abs();
            prop_assert!(err <= h.ulp() as f64 / 2.0 + 1e-30,
                "x={x}, h={h}, err={err}, ulp={}", h.ulp());
        } else if !h.is_nan() {
            // overflowed to infinity: x must be beyond the rounding boundary
            prop_assert!(x.abs() >= 65520.0, "x={x} wrongly overflowed");
        }
    }

    /// Round trip through f32 is the identity on non-NaN values.
    #[test]
    fn roundtrip_f32(h in any_f16()) {
        let back = F16::from_f32(h.to_f32());
        prop_assert_eq!(back.to_bits(), h.to_bits());
    }

    /// Widening preserves ordering.
    #[test]
    fn widening_monotone(a in any_f16(), b in any_f16()) {
        let (fa, fb) = (a.to_f32(), b.to_f32());
        prop_assert_eq!(a < b, fa < fb);
        prop_assert_eq!(a == b, fa == fb);
    }

    /// Addition is commutative (bitwise, for non-NaN results).
    #[test]
    fn add_commutative(a in finite_f16(), b in finite_f16()) {
        let x = a + b;
        let y = b + a;
        if !x.is_nan() {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Multiplication is commutative.
    #[test]
    fn mul_commutative(a in finite_f16(), b in finite_f16()) {
        let x = a * b;
        let y = b * a;
        if !x.is_nan() {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// x - x == 0 for finite x.
    #[test]
    fn sub_self_is_zero(a in finite_f16()) {
        prop_assert!((a - a).is_zero());
    }

    /// Adding zero is the identity (except -0 + 0 sign normalization).
    #[test]
    fn add_zero_identity(a in finite_f16()) {
        prop_assert_eq!(a + F16::ZERO, a);
    }

    /// Multiplying by one is the identity.
    #[test]
    fn mul_one_identity(a in finite_f16()) {
        prop_assert_eq!(a * F16::ONE, a);
    }

    /// a.max(b) >= both operands; a.min(b) <= both.
    #[test]
    fn max_min_bounds(a in any_f16(), b in any_f16()) {
        let hi = a.max(b);
        let lo = a.min(b);
        prop_assert!(hi >= a && hi >= b);
        prop_assert!(lo <= a && lo <= b);
    }

    /// ulp_distance is symmetric and zero iff value-equal.
    #[test]
    fn ulp_distance_symmetric(a in any_f16(), b in any_f16()) {
        prop_assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
        if ulp_distance(a, b) == 0 {
            prop_assert_eq!(a, b);
        }
    }

    /// exp never produces values > f16 max without going to infinity, and
    /// exp(x - max) <= 1 for x <= max: the safe-softmax invariant.
    #[test]
    fn safe_softmax_exponent_invariant(a in finite_f16(), m in finite_f16()) {
        let hi = a.max(m);
        let shifted = (a - hi).exp();
        if !shifted.is_nan() {
            prop_assert!(shifted <= F16::ONE, "e^(a-max) must be <= 1, got {shifted}");
            prop_assert!(shifted.is_finite());
        }
    }

    /// Conversion matches the sign: from_f32 never flips sign for nonzero
    /// finite inputs.
    #[test]
    fn sign_preserved(x in wide_f32()) {
        prop_assume!(x != 0.0);
        let h = F16::from_f32(x);
        if !h.is_zero() {
            prop_assert_eq!(h.is_sign_negative(), x.is_sign_negative());
        }
    }

    /// Raw bit conversion function agrees with the method.
    #[test]
    fn free_function_agrees(x in wide_f32()) {
        prop_assert_eq!(f16_bits_from_f32(x), F16::from_f32(x).to_bits());
    }

    /// f64 direct conversion agrees with f32 conversion whenever the f64 is
    /// exactly representable as f32 (no double rounding possible).
    #[test]
    fn f64_agrees_on_f32_exact(x in wide_f32()) {
        let via_f32 = F16::from_f32(x);
        let via_f64 = F16::from_f64(x as f64);
        if !via_f32.is_nan() {
            prop_assert_eq!(via_f32.to_bits(), via_f64.to_bits());
        }
    }
}
