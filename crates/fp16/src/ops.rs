//! Arithmetic operators for [`F16`].
//!
//! Each binary operation computes in `f32` and rounds the result back to
//! binary16. Because both operands are exact in `f32` and the `f32` result is
//! correctly rounded, a second rounding `f32 -> f16` yields the correctly
//! rounded binary16 result for `+`, `-`, `*` (the double rounding is innocuous
//! here: binary32 keeps 13 more mantissa bits than binary16, more than the
//! 2·(10+1)+2 bound needed for exact-then-round addition/multiplication of
//! 11-bit significands). Division uses `f64` to be safe.

use crate::F16;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

impl Add for F16 {
    type Output = F16;
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = F16;
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() / rhs.to_f64())
    }
}

impl Rem for F16 {
    type Output = F16;
    #[inline]
    fn rem(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() % rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        self.negate()
    }
}

impl AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl SubAssign for F16 {
    #[inline]
    fn sub_assign(&mut self, rhs: F16) {
        *self = *self - rhs;
    }
}

impl MulAssign for F16 {
    #[inline]
    fn mul_assign(&mut self, rhs: F16) {
        *self = *self * rhs;
    }
}

impl DivAssign for F16 {
    #[inline]
    fn div_assign(&mut self, rhs: F16) {
        *self = *self / rhs;
    }
}

impl Sum for F16 {
    /// Sequential half-precision accumulation (rounds after every add),
    /// matching a scalar GPU thread's accumulation order.
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a F16> for F16 {
    fn sum<I: Iterator<Item = &'a F16>>(iter: I) -> F16 {
        iter.copied().sum()
    }
}

impl Product for F16 {
    fn product<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ulp_distance, F16};

    #[test]
    fn exact_small_integer_arithmetic() {
        let three = F16::from_f32(3.0);
        let four = F16::from_f32(4.0);
        assert_eq!((three + four).to_f32(), 7.0);
        assert_eq!((four - three).to_f32(), 1.0);
        assert_eq!((three * four).to_f32(), 12.0);
        assert_eq!((F16::from_f32(12.0) / four).to_f32(), 3.0);
        assert_eq!((F16::from_f32(7.0) % three).to_f32(), 1.0);
        assert_eq!((-three).to_f32(), -3.0);
    }

    #[test]
    fn assign_ops() {
        let mut x = F16::from_f32(1.0);
        x += F16::from_f32(2.0);
        assert_eq!(x.to_f32(), 3.0);
        x -= F16::ONE;
        assert_eq!(x.to_f32(), 2.0);
        x *= F16::from_f32(4.0);
        assert_eq!(x.to_f32(), 8.0);
        x /= F16::from_f32(2.0);
        assert_eq!(x.to_f32(), 4.0);
    }

    #[test]
    fn addition_rounds_to_nearest() {
        // 2048 is representable; 2048 + 1 = 2049 is not (ulp at 2048 is 2).
        // Ties-to-even keeps 2048.
        let big = F16::from_f32(2048.0);
        assert_eq!((big + F16::ONE).to_f32(), 2048.0);
        // 2048 + 2 = 2050 is exactly representable.
        assert_eq!((big + F16::from_f32(2.0)).to_f32(), 2050.0);
        // 2048 + 3 = 2051 ties between 2050 and 2052 -> even mantissa (2052).
        assert_eq!((big + F16::from_f32(3.0)).to_f32(), 2052.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let max = F16::MAX;
        assert!((max + max).is_infinite());
        assert!((max * F16::from_f32(2.0)).is_infinite());
        assert!((F16::MIN - F16::MAX).is_infinite());
        assert!((F16::MIN - F16::MAX).is_sign_negative());
    }

    #[test]
    fn division_by_zero_gives_infinity() {
        assert!((F16::ONE / F16::ZERO).is_infinite());
        assert!((F16::NEG_ONE / F16::ZERO).is_sign_negative());
        assert!((F16::ZERO / F16::ZERO).is_nan());
    }

    #[test]
    fn sum_accumulates_in_half_precision() {
        // Summing 4096 ones in f16: once acc hits 2048, +1 no longer moves it
        // (ulp = 2), so the half-precision sequential sum sticks at 2048.
        let ones = vec![F16::ONE; 4096];
        let s: F16 = ones.iter().sum();
        assert_eq!(s.to_f32(), 2048.0);
    }

    #[test]
    fn product_of_halves_underflows_gradually() {
        let halves = vec![F16::from_f32(0.5); 30];
        let p: F16 = halves.into_iter().product();
        // 2^-30 < 2^-24 (min subnormal) -> flushes to zero via rounding
        assert!(p.is_zero());
    }

    #[test]
    fn mul_add_single_rounding_beats_two_roundings() {
        // Find behaviour difference: a*b alone rounds; mul_add keeps it exact
        // until the final add. 1.0009765625 = 1 + 2^-10 (one ulp above 1).
        let a = F16::ONE.next_up();
        let b = F16::ONE.next_up();
        // a*b = 1 + 2^-9 + 2^-20 -> rounds to 1 + 2^-9 in f16.
        let two_round = a * b - F16::ONE;
        let fused = a.mul_add(b, F16::NEG_ONE);
        // fused result: 2^-9 + 2^-20 rounded once
        assert!(fused.to_f32() >= two_round.to_f32());
        assert!(ulp_distance(fused, two_round) <= 1);
    }

    #[test]
    fn subnormal_arithmetic() {
        let tiny = F16::MIN_POSITIVE_SUBNORMAL;
        assert_eq!((tiny + tiny).to_f32(), 2.0 * 2.0f32.powi(-24));
        assert!((tiny - tiny).is_zero());
        assert!((tiny * tiny).is_zero()); // underflows
    }
}
