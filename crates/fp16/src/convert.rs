//! Bit-level conversions between binary16, binary32 and binary64.
//!
//! All narrowing conversions use round-to-nearest, ties-to-even, which is the
//! IEEE 754 default and what GPU conversion instructions (`F2F.F16.F32`)
//! implement.

/// Converts an `f32` bit-for-bit to the nearest binary16 bit pattern.
///
/// Handles all cases: NaN (quieted), infinities, overflow to infinity,
/// normals, subnormals, underflow to zero, and signed zeros.
pub fn f16_bits_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if man == 0 {
            sign | 0x7C00
        } else {
            // Quiet NaN; keep the top mantissa bit set so it stays a NaN.
            sign | 0x7E00
        };
    }

    // Unbiased exponent.
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Too large: round to infinity. (65504 + 16 rounds to inf; values in
        // [65504, 65520) round back down to MAX and have unbiased == 15.)
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal range for f16 (possibly rounding up to inf at the top).
        // 23-bit mantissa -> 10-bit: shift out 13 bits with RNE.
        let half_exp = (unbiased + 15) as u32; // 1..=30
        let combined = (half_exp << 10) as u16 | (man >> 13) as u16;
        let round_bit = (man >> 12) & 1;
        let sticky = man & 0x0FFF;
        let round_up = round_bit == 1 && (sticky != 0 || (combined & 1) == 1);
        // Rounding up may carry into the exponent — and from 0x7BFF (MAX) to
        // 0x7C00 (inf), which is the correct IEEE behaviour.
        return sign | combined.wrapping_add(round_up as u16);
    }
    if unbiased >= -25 {
        // Subnormal f16 range: value = 0.xxxx * 2^-14.
        // Implicit leading 1 becomes explicit; shift = number of discarded bits.
        let man = man | 0x0080_0000; // add implicit bit -> 24-bit significand
        let shift = (-14 - unbiased) as u32 + 13; // unbiased -25..=-15 -> 14..=24
        let kept = (man >> shift) as u16;
        let round_bit = (man >> (shift - 1)) & 1;
        let sticky = man & ((1 << (shift - 1)) - 1);
        let round_up = round_bit == 1 && (sticky != 0 || (kept & 1) == 1);
        return sign | kept.wrapping_add(round_up as u16);
    }
    // Underflow to (signed) zero.
    sign
}

/// Converts an `f64` directly to the nearest binary16 bit pattern with a
/// single rounding (no intermediate `f32` double-rounding).
pub fn f16_bits_from_f64(x: f64) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7FF) as i32;
    let man = bits & 0x000F_FFFF_FFFF_FFFF;

    if exp == 0x7FF {
        return if man == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }

    let unbiased = exp - 1023;
    if unbiased >= 16 {
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        let half_exp = (unbiased + 15) as u64;
        let combined = ((half_exp << 10) | (man >> 42)) as u16;
        let round_bit = (man >> 41) & 1;
        let sticky = man & ((1u64 << 41) - 1);
        let round_up = round_bit == 1 && (sticky != 0 || (combined & 1) == 1);
        return sign | combined.wrapping_add(round_up as u16);
    }
    if unbiased >= -25 {
        let man = man | 0x0010_0000_0000_0000;
        let shift = (-14 - unbiased) as u32 + 42;
        let kept = (man >> shift) as u16;
        let round_bit = (man >> (shift - 1)) & 1;
        let sticky = man & ((1u64 << (shift - 1)) - 1);
        let round_up = round_bit == 1 && (sticky != 0 || (kept & 1) == 1);
        return sign | kept.wrapping_add(round_up as u16);
    }
    sign
}

/// Widens a binary16 bit pattern to the exactly-equal `f32`.
pub fn f32_from_f16_bits(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let man = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if man == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize. value = man * 2^-24 = 1.xxx * 2^(-14-shift).
            let shift = man.leading_zeros() - 21; // bring MSB to bit 10
            let man = (man << shift) & 0x03FF;
            let exp = 127 - 14 - shift;
            sign | (exp << 23) | (man << 13)
        }
    } else if exp == 0x1F {
        if man == 0 {
            sign | 0x7F80_0000 // infinity
        } else {
            sign | 0x7FC0_0000 | (man << 13) // NaN, keep payload
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F16;

    /// Brute-force oracle: find the nearest representable f16 to `x` by
    /// scanning candidates around the result.
    fn slow_nearest(x: f32) -> u16 {
        assert!(x.is_finite());
        let mut best = 0u16;
        let mut best_err = f64::INFINITY;
        for bits in 0..=0xFFFFu16 {
            let v = F16::from_bits(bits);
            if v.is_nan() {
                continue;
            }
            let err = (v.to_f64() - x as f64).abs();
            // prefer the even-mantissa finite candidate on exact ties
            let tie_to_even = err == best_err && bits & 1 == 0 && v.is_finite();
            if err < best_err || tie_to_even {
                best = bits;
                best_err = err;
            }
        }
        best
    }

    #[test]
    fn every_f16_round_trips_through_f32() {
        for bits in 0..=0xFFFFu16 {
            let x = F16::from_bits(bits);
            let back = F16::from_f32(x.to_f32());
            if x.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn every_f16_round_trips_through_f64() {
        for bits in 0..=0xFFFFu16 {
            let x = F16::from_bits(bits);
            let back = F16::from_f64(x.to_f64());
            if x.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn rounding_matches_slow_oracle_at_boundaries() {
        // Check values around every kind of boundary against the brute-force
        // oracle (each is a half-way or near-half-way pattern).
        let interesting: &[f32] = &[
            0.0,
            -0.0,
            1.0,
            1.0 + 2.0f32.powi(-11), // exactly half ulp above 1.0 -> ties to even (1.0)
            1.0 + 2.0f32.powi(-11) * 1.01, // just above half ulp -> rounds up
            1.0 + 3.0 * 2.0f32.powi(-11), // 1.5 ulp -> ties to even (rounds up)
            65504.0,                // MAX
            65519.9,                // just below the MAX/inf rounding boundary
            2.0f32.powi(-14),       // smallest normal
            2.0f32.powi(-14) - 2.0f32.powi(-25), // largest subnormal + half ulp territory
            2.0f32.powi(-24),       // smallest subnormal
            2.0f32.powi(-25),       // exactly half of smallest subnormal -> ties to even (0)
            2.0f32.powi(-25) * 1.001, // just above -> rounds to min subnormal
            2.0f32.powi(-26),       // underflow to 0
            -1.5,
            -65504.0,
            1234.5678,
            0.1,
            std::f32::consts::PI,
        ];
        for &x in interesting {
            let got = f16_bits_from_f32(x);
            let want = slow_nearest(x);
            // Compare as values (0x0000 vs 0x8000 both zero-equal for -0 input
            // handled by comparing exact bits except the -0 case).
            if x == 0.0 || (got & 0x7FFF == 0 && want & 0x7FFF == 0) {
                // zeros of either sign are value-equal; the oracle does not
                // track the sign of a rounded-to-zero result
                assert_eq!(got & 0x7FFF, 0, "zero case {x}");
            } else {
                assert_eq!(
                    got,
                    want,
                    "x={x}: got {got:#06x} ({}), want {want:#06x} ({})",
                    F16::from_bits(got),
                    F16::from_bits(want)
                );
            }
        }
    }

    /// Exhaustive RNE check at the subnormal boundary: the midpoint between
    /// consecutive f16 subnormals `k·2^-24` and `(k+1)·2^-24` is
    /// `(2k+1)·2^-25`, exactly representable in f32 and f64. Ties must go
    /// to the even mantissa; one-ULP offsets must break the tie in the
    /// right direction — for every `k`, on both conversion paths.
    #[test]
    fn subnormal_midpoints_tie_to_even_exhaustively() {
        for k in 0u32..=1023 {
            let mid64 = f64::from(2 * k + 1) * 2f64.powi(-25);
            let mid32 = mid64 as f32; // exact: 11-bit significand at most
            let even = if k % 2 == 0 { k } else { k + 1 } as u16;
            assert_eq!(f16_bits_from_f32(mid32), even, "k={k} tie (f32 path)");
            assert_eq!(f16_bits_from_f64(mid64), even, "k={k} tie (f64 path)");
            let up = f32::from_bits(mid32.to_bits() + 1);
            assert_eq!(f16_bits_from_f32(up), (k + 1) as u16, "k={k} above");
            let down = f32::from_bits(mid32.to_bits() - 1);
            assert_eq!(f16_bits_from_f32(down), k as u16, "k={k} below");
        }
        // Every subnormal (and the smallest normal) is a fixed point of
        // both narrowing paths.
        for bits in 0..=0x0400u16 {
            let v = f32_from_f16_bits(bits);
            assert_eq!(f16_bits_from_f32(v), bits, "bits {bits:#06x}");
            assert_eq!(f16_bits_from_f64(f64::from(v)), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn overflow_boundary_to_infinity() {
        // 65520 is exactly half way between 65504 (MAX) and 65536 (would-be
        // next value): ties-to-even rounds to infinity (even exponent pattern).
        assert_eq!(f16_bits_from_f32(65519.996), 0x7BFF);
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(-65520.0).is_infinite());
        assert_eq!(f16_bits_from_f32(65519.0), 0x7BFF);
    }

    #[test]
    fn f64_single_rounding_differs_from_double_rounding() {
        // Construct a value where f64 -> f32 -> f16 double-rounds upward but
        // direct f64 -> f16 correctly rounds down:
        // pick x = 1 + 2^-11 + 2^-36: f32 rounding keeps 2^-11 + tiny,
        // and already rounds the 2^-36 away to produce exactly 1 + 2^-11
        // (tie) -> f16 ties-to-even gives 1.0. Direct rounding sees the 2^-36
        // sticky bit and rounds up to 1 + 2^-10.
        let x = 1.0f64 + 2.0f64.powi(-11) + 2.0f64.powi(-36);
        let direct = F16::from_f64(x);
        assert_eq!(
            direct.to_f32(),
            1.0 + 2.0f32.powi(-10),
            "direct must round up"
        );
    }

    #[test]
    fn nan_payload_quieted() {
        let signaling = f32::from_bits(0x7F80_0001);
        assert!(F16::from_f32(signaling).is_nan());
        let neg_nan = f32::from_bits(0xFFC0_0000);
        let h = F16::from_f32(neg_nan);
        assert!(h.is_nan());
        assert!(h.is_sign_negative());
    }

    #[test]
    fn subnormal_f32_inputs_underflow_to_zero() {
        let tiny = f32::from_bits(1); // smallest positive subnormal f32
        assert_eq!(F16::from_f32(tiny).to_bits(), 0);
        assert_eq!(F16::from_f32(-tiny).to_bits(), 0x8000);
    }
}

/// Converts a slice of `f32` to binary16 bit patterns (round-to-nearest-even
/// elementwise) — the bulk form used when staging host data for a simulated
/// device buffer.
pub fn f16_bits_from_f32_slice(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| f16_bits_from_f32(x)).collect()
}

/// Widens a slice of binary16 bit patterns to `f32`.
pub fn f32_from_f16_bits_slice(bits: &[u16]) -> Vec<f32> {
    bits.iter().map(|&b| f32_from_f16_bits(b)).collect()
}

#[cfg(test)]
mod slice_tests {
    use super::*;

    #[test]
    fn slice_roundtrip() {
        let xs = [0.0f32, 1.5, -2.25, 65504.0, 1e-8];
        let bits = f16_bits_from_f32_slice(&xs);
        let back = f32_from_f16_bits_slice(&bits);
        assert_eq!(back[0], 0.0);
        assert_eq!(back[1], 1.5);
        assert_eq!(back[2], -2.25);
        assert_eq!(back[3], 65504.0);
        assert_eq!(back[4], 0.0, "underflows to zero");
        assert_eq!(bits.len(), xs.len());
    }

    #[test]
    fn empty_slices() {
        assert!(f16_bits_from_f32_slice(&[]).is_empty());
        assert!(f32_from_f16_bits_slice(&[]).is_empty());
    }
}
