//! Software IEEE 754 binary16 ("half precision", FP16) arithmetic.
//!
//! The paper evaluates every transformer model in FP16, and the correctness of
//! *safe softmax* and of the decomposed softmax (LS / IR / GS sub-layers)
//! depends on half-precision range and rounding behaviour — e.g. `e^{x-m}`
//! is computed specifically so that intermediate exponentials stay inside
//! binary16's tiny dynamic range (max finite value 65504). To reproduce those
//! numerics faithfully without GPU hardware, this crate implements binary16
//! bit-exactly in software:
//!
//! * [`F16`] — a 16-bit storage type with correct conversions to/from `f32`
//!   (round-to-nearest-even, including subnormals, infinities and NaNs).
//! * Arithmetic operators that compute in `f32` and round back to binary16
//!   after every operation, matching how GPU CUDA cores treat scalar half
//!   math (fused wide ops are opt-in via [`F16::mul_add`]).
//! * Inspection helpers ([`F16::is_nan`], [`F16::classify`], [`F16::ulp`],
//!   [`ulp_distance`]) used by the test suites to state accuracy bounds.
//!
//! # Examples
//!
//! ```
//! use resoftmax_fp16::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(2.25);
//! assert_eq!((a + b).to_f32(), 3.75);
//!
//! // binary16 saturates to infinity beyond 65504:
//! assert!(F16::from_f32(70000.0).is_infinite());
//!
//! // safe softmax exists precisely because of this:
//! assert!(F16::from_f32(12.0).to_f32().exp() > 65504.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod ops;

use core::cmp::Ordering;
use core::fmt;
use core::num::FpCategory;

pub use convert::{
    f16_bits_from_f32, f16_bits_from_f32_slice, f32_from_f16_bits, f32_from_f16_bits_slice,
};

/// An IEEE 754 binary16 floating-point number stored as its raw bit pattern.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
///
/// All arithmetic rounds to nearest-even after every operation, which is the
/// behaviour of scalar half-precision math on the GPUs modeled by
/// `resoftmax-gpusim`.
#[derive(Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct F16(pub(crate) u16);

/// Number of mantissa (fraction) bits in binary16.
pub const MANTISSA_BITS: u32 = 10;
/// Exponent bias of binary16.
pub const EXPONENT_BIAS: i32 = 15;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon: difference between 1.0 and the next representable
    /// value, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values with magnitude above [`F16::MAX`] become infinities; tiny values
    /// round to subnormals or zero. NaNs stay NaNs (payload is normalized to a
    /// quiet NaN).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(convert::f16_bits_from_f32(x))
    }

    /// Converts an `f64` to binary16 with a single rounding.
    ///
    /// Going through `f32` first could double-round; this converts directly
    /// from the `f64` bit pattern instead.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        F16(convert::f16_bits_from_f64(x))
    }

    /// Widens to `f32` (exact; every binary16 value is representable).
    #[inline]
    pub fn to_f32(self) -> f32 {
        convert::f32_from_f16_bits(self.0)
    }

    /// Widens to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7FFF) > 0x7C00
    }

    /// Returns `true` for positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Returns `true` for +0.0 or -0.0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Returns `true` if the value is subnormal (nonzero with biased
    /// exponent 0).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs with a
    /// sign bit).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Returns `true` if the sign bit is clear.
    #[inline]
    pub fn is_sign_positive(self) -> bool {
        !self.is_sign_negative()
    }

    /// Floating-point category of the value.
    pub fn classify(self) -> FpCategory {
        let exp = self.0 & 0x7C00;
        let man = self.0 & 0x03FF;
        match (exp, man) {
            (0, 0) => FpCategory::Zero,
            (0, _) => FpCategory::Subnormal,
            (0x7C00, 0) => FpCategory::Infinite,
            (0x7C00, _) => FpCategory::Nan,
            _ => FpCategory::Normal,
        }
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & 0x7FFF)
    }

    /// Negation (flips the sign bit, like IEEE negate).
    #[inline]
    pub fn negate(self) -> Self {
        F16(self.0 ^ 0x8000)
    }

    /// `e^self`, computed in `f32` and rounded once to binary16.
    #[inline]
    pub fn exp(self) -> Self {
        F16::from_f32(self.to_f32().exp())
    }

    /// Natural logarithm, computed in `f32` and rounded once to binary16.
    #[inline]
    pub fn ln(self) -> Self {
        F16::from_f32(self.to_f32().ln())
    }

    /// Square root, computed in `f32` and rounded once to binary16.
    #[inline]
    pub fn sqrt(self) -> Self {
        F16::from_f32(self.to_f32().sqrt())
    }

    /// Reciprocal `1/self` with a single rounding.
    #[inline]
    pub fn recip(self) -> Self {
        F16::from_f32(self.to_f32().recip())
    }

    /// Fused multiply-add `self * a + b` with a *single* rounding at the end,
    /// matching GPU HFMA behaviour.
    #[inline]
    pub fn mul_add(self, a: F16, b: F16) -> Self {
        F16::from_f64(self.to_f64() * a.to_f64() + b.to_f64())
    }

    /// IEEE maximum: propagates the non-NaN operand if exactly one is NaN
    /// (like CUDA `__hmax` / `fmax`), returns NaN if both are.
    pub fn max(self, other: F16) -> Self {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => F16::NAN,
            (true, false) => other,
            (false, true) => self,
            (false, false) => {
                if self.to_f32() >= other.to_f32() {
                    self
                } else {
                    other
                }
            }
        }
    }

    /// IEEE minimum with the same NaN handling as [`F16::max`].
    pub fn min(self, other: F16) -> Self {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => F16::NAN,
            (true, false) => other,
            (false, true) => self,
            (false, false) => {
                if self.to_f32() <= other.to_f32() {
                    self
                } else {
                    other
                }
            }
        }
    }

    /// The size of one unit-in-the-last-place at this value's magnitude.
    ///
    /// Returns infinity for infinities and NaN for NaN.
    pub fn ulp(self) -> f32 {
        if self.is_nan() {
            return f32::NAN;
        }
        if self.is_infinite() {
            return f32::INFINITY;
        }
        let exp_bits = ((self.0 >> MANTISSA_BITS) & 0x1F) as i32;
        let exp = if exp_bits == 0 {
            // subnormal range: ulp = 2^-24
            1 - EXPONENT_BIAS - MANTISSA_BITS as i32
        } else {
            exp_bits - EXPONENT_BIAS - MANTISSA_BITS as i32
        };
        (exp as f32).exp2()
    }

    /// Next representable value toward +infinity.
    ///
    /// # Panics
    ///
    /// Panics if `self` is NaN or +infinity.
    pub fn next_up(self) -> Self {
        assert!(!self.is_nan(), "next_up of NaN");
        assert!(
            self != F16::INFINITY,
            "next_up of +infinity is not representable"
        );
        if self.is_sign_negative() {
            if (self.0 & 0x7FFF) == 0 {
                // -0.0 -> smallest positive subnormal
                F16(0x0001)
            } else {
                F16(self.0 - 1)
            }
        } else {
            F16(self.0 + 1)
        }
    }

    /// Total order rank used for ULP distance: maps the 16-bit patterns onto a
    /// monotone integer line (negative values reversed), so adjacent
    /// representable values differ by exactly 1.
    fn monotone_rank(self) -> i32 {
        let b = self.0;
        if b & 0x8000 != 0 {
            -((b & 0x7FFF) as i32)
        } else {
            (b & 0x7FFF) as i32
        }
    }
}

/// Number of representable binary16 values between `a` and `b`
/// (0 when bit-identical or when both are zeros of either sign).
///
/// Returns `u32::MAX` if either input is NaN, so NaNs never pass an ULP bound.
///
/// # Examples
///
/// ```
/// use resoftmax_fp16::{ulp_distance, F16};
/// let one = F16::ONE;
/// assert_eq!(ulp_distance(one, one.next_up()), 1);
/// assert_eq!(ulp_distance(F16::ZERO, F16::NEG_ZERO), 0);
/// ```
pub fn ulp_distance(a: F16, b: F16) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    a.monotone_rank().abs_diff(b.monotone_rank())
}

impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        // +0 == -0
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

impl From<i8> for F16 {
    fn from(x: i8) -> Self {
        F16::from_f32(x as f32)
    }
}

impl From<u8> for F16 {
    fn from(x: u8) -> Self {
        F16::from_f32(x as f32)
    }
}

impl core::str::FromStr for F16 {
    type Err = core::num::ParseFloatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<f32>().map(F16::from_f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn classify_covers_all_categories() {
        assert_eq!(F16::ZERO.classify(), FpCategory::Zero);
        assert_eq!(F16::NEG_ZERO.classify(), FpCategory::Zero);
        assert_eq!(
            F16::MIN_POSITIVE_SUBNORMAL.classify(),
            FpCategory::Subnormal
        );
        assert_eq!(F16::ONE.classify(), FpCategory::Normal);
        assert_eq!(F16::INFINITY.classify(), FpCategory::Infinite);
        assert_eq!(F16::NAN.classify(), FpCategory::Nan);
    }

    #[test]
    fn zero_signs_compare_equal() {
        assert_eq!(F16::ZERO, F16::NEG_ZERO);
        assert_ne!(F16::ZERO.to_bits(), F16::NEG_ZERO.to_bits());
    }

    #[test]
    fn nan_is_not_equal_to_itself() {
        assert_ne!(F16::NAN, F16::NAN);
    }

    #[test]
    fn max_min_follow_cuda_nan_semantics() {
        let x = F16::from_f32(3.0);
        assert_eq!(F16::NAN.max(x), x);
        assert_eq!(x.max(F16::NAN), x);
        assert!(F16::NAN.max(F16::NAN).is_nan());
        assert_eq!(F16::NAN.min(x), x);
        assert_eq!(x.min(F16::NAN), x);
        assert_eq!(x.max(F16::from_f32(5.0)).to_f32(), 5.0);
        assert_eq!(x.min(F16::from_f32(5.0)).to_f32(), 3.0);
    }

    #[test]
    fn ulp_at_one_is_epsilon() {
        assert_eq!(F16::ONE.ulp(), 2.0f32.powi(-10));
        assert_eq!(F16::from_f32(2.0).ulp(), 2.0f32.powi(-9));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.ulp(), 2.0f32.powi(-24));
    }

    #[test]
    fn next_up_walks_one_ulp() {
        let one = F16::ONE;
        assert_eq!(one.next_up().to_f32(), 1.0 + 2.0f32.powi(-10));
        assert_eq!(F16::NEG_ZERO.next_up(), F16::MIN_POSITIVE_SUBNORMAL);
        let neg = F16::from_f32(-1.0);
        assert!(neg.next_up().to_f32() > -1.0);
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(F16::ONE, F16::ONE), 0);
        assert_eq!(ulp_distance(F16::ONE, F16::ONE.next_up()), 1);
        assert_eq!(ulp_distance(F16::ZERO, F16::NEG_ZERO), 0);
        assert_eq!(ulp_distance(F16::NAN, F16::ONE), u32::MAX);
        // across zero: -min_subnormal .. +min_subnormal is 2 steps
        let neg_sub = F16::MIN_POSITIVE_SUBNORMAL.negate();
        assert_eq!(ulp_distance(neg_sub, F16::MIN_POSITIVE_SUBNORMAL), 2);
    }

    #[test]
    fn exp_overflows_at_moderate_inputs() {
        // e^12 > 65504 — the reason safe softmax subtracts the max.
        assert!(F16::from_f32(12.0).exp().is_infinite());
        assert!(F16::from_f32(11.0).exp().is_finite());
        assert_eq!(F16::ZERO.exp(), F16::ONE);
    }

    #[test]
    fn abs_and_negate() {
        assert_eq!(F16::from_f32(-2.5).abs().to_f32(), 2.5);
        assert_eq!(F16::from_f32(2.5).negate().to_f32(), -2.5);
        assert!(F16::NAN.negate().is_nan());
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", F16::from_f32(1.5)), "1.5");
        assert_eq!(format!("{:?}", F16::from_f32(1.5)), "F16(1.5)");
        assert_eq!(format!("{:x}", F16::ONE), "3c00");
        assert_eq!(format!("{:X}", F16::ONE), "3C00");
        assert_eq!(format!("{:b}", F16::ONE), "11110000000000");
    }

    #[test]
    fn from_str_parses() {
        let x: F16 = "1.5".parse().unwrap();
        assert_eq!(x.to_f32(), 1.5);
        assert!("abc".parse::<F16>().is_err());
    }

    #[test]
    fn send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<F16>();
        assert_sync::<F16>();
    }
}
