//! The regime→knob policy table, static or priced through the tuner.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::ModelConfig;
use resoftmax_serve::{Policy, ServeConfig};
use resoftmax_tune::{TuneError, TuneWorkload, Tuner};

use crate::controller::Regime;

/// Chunked-prefill budgets [`PolicyTable::tuned`] prices against each
/// other. Spans the fleet's useful range: small chunks keep decode TBT
/// tight, large chunks push prefill throughput.
const CHUNK_CANDIDATES: [usize; 4] = [64, 128, 256, 512];

/// Safety margin on the tuned admission rate: admit slightly below the
/// priced prefill throughput so the queue drains under overload instead of
/// treading water.
const ADMISSION_MARGIN: f64 = 0.9;

/// The knob set one regime runs with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeKnobs {
    /// Scheduling policy for every replica's admission pass.
    pub policy: Policy,
    /// Chunked-prefill budget (max prompt tokens one request contributes
    /// per iteration).
    pub prefill_chunk: usize,
    /// Token-bucket admission rate *per accepting prefill-capable replica*
    /// (the controller scales it to the live fleet), or `None` to run
    /// unmetered.
    pub admission_tokens_per_s: Option<f64>,
}

/// One knob set per regime. The numeric knobs are either carried from the
/// workload config ([`PolicyTable::static_default`]) or priced through the
/// tuning database ([`PolicyTable::tuned`]); the policy column is FIFO /
/// preemptive-priority / shortest-remaining in the static table, while the
/// tuned table keeps prefill priority in every regime (it is a strict
/// first-token win, and overload sheds through the admission meter) and
/// differentiates regimes on chunk budget and admission instead.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTable {
    /// Knobs while idle.
    pub idle: RegimeKnobs,
    /// Knobs in steady state.
    pub steady: RegimeKnobs,
    /// Knobs under burst.
    pub burst: RegimeKnobs,
    /// Knobs under overload.
    pub overload: RegimeKnobs,
}

impl PolicyTable {
    /// The untuned table: every regime keeps the workload's configured
    /// prefill chunk and runs unmetered; only the scheduling policy varies.
    pub fn static_default(cfg: &ServeConfig) -> Self {
        let base = RegimeKnobs {
            policy: Policy::Fifo,
            prefill_chunk: cfg.prefill_chunk,
            admission_tokens_per_s: None,
        };
        PolicyTable {
            idle: base,
            steady: base,
            burst: RegimeKnobs {
                policy: Policy::PreemptivePriority,
                ..base
            },
            overload: RegimeKnobs {
                policy: Policy::ShortestRemaining,
                ..base
            },
        }
    }

    /// Prices the numeric knobs through the tuner: each candidate prefill
    /// chunk is costed as a representative fused iteration (one chunked
    /// prefill row + a decode-full batch at the workload's mean context).
    /// Steady state takes the chunk that prefills a mean prompt fastest
    /// (iterations-to-first-token × iteration cost — TTFT, not per-step
    /// cost, is what a calm fleet buys with its headroom), burst takes the
    /// highest prefill throughput (chunk tokens per iteration second), and
    /// overload meters admission at that throughput less a margin. The
    /// policy column keeps preemptive prefill priority in every regime:
    /// against this cost model preemption strictly improves first-token
    /// latency without re-prefill (evicted decodes keep their KV), and
    /// under overload the admission meter — not the scheduling order —
    /// does the shedding. Answers come from the tuner's persisted database
    /// when warm, so the table is deterministic and cheap across runs.
    ///
    /// # Errors
    ///
    /// [`TuneError`] when a candidate bucket cannot be tuned (e.g. even the
    /// default schedule fails the legality gates).
    pub fn tuned(
        tuner: &Tuner,
        model: &ModelConfig,
        device: &DeviceSpec,
        cfg: &ServeConfig,
    ) -> Result<Self, TuneError> {
        let (plo, phi) = cfg.prompt_tokens;
        let mean_prompt = usize::midpoint(plo, phi);
        let decode_rows = cfg.max_batch.saturating_sub(1).max(1);

        let mut steady_chunk = CHUNK_CANDIDATES[0];
        let mut steady_cost = f64::INFINITY;
        let mut burst_chunk = CHUNK_CANDIDATES[0];
        let mut burst_rate = f64::NEG_INFINITY;
        for &chunk in &CHUNK_CANDIDATES {
            let mut ctxs = vec![chunk];
            ctxs.extend(std::iter::repeat_n(mean_prompt.max(1), decode_rows));
            let tuned = tuner.tune(model, device, &TuneWorkload::Decode { ctxs })?;
            let cost_s = tuned.cost_s;
            let iterations = mean_prompt.max(1).div_ceil(chunk);
            let ttft_s = iterations as f64 * cost_s;
            if ttft_s < steady_cost {
                steady_cost = ttft_s;
                steady_chunk = chunk;
            }
            let rate = chunk as f64 / cost_s;
            if rate > burst_rate {
                burst_rate = rate;
                burst_chunk = chunk;
            }
        }

        let calm = RegimeKnobs {
            policy: Policy::PreemptivePriority,
            prefill_chunk: steady_chunk,
            admission_tokens_per_s: None,
        };
        Ok(PolicyTable {
            idle: calm,
            steady: calm,
            burst: RegimeKnobs {
                policy: Policy::PreemptivePriority,
                prefill_chunk: burst_chunk,
                admission_tokens_per_s: None,
            },
            overload: RegimeKnobs {
                policy: Policy::PreemptivePriority,
                prefill_chunk: burst_chunk,
                admission_tokens_per_s: Some(burst_rate * ADMISSION_MARGIN),
            },
        })
    }

    /// The knob set for `regime`.
    pub fn knobs(&self, regime: Regime) -> &RegimeKnobs {
        match regime {
            Regime::Idle => &self.idle,
            Regime::Steady => &self.steady,
            Regime::Burst => &self.burst,
            Regime::Overload => &self.overload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_tune::{SearchMode, SearchSpace};

    #[test]
    fn static_table_varies_only_the_policy() {
        let cfg = ServeConfig::default();
        let t = PolicyTable::static_default(&cfg);
        assert_eq!(t.steady.policy, Policy::Fifo);
        assert_eq!(t.burst.policy, Policy::PreemptivePriority);
        assert_eq!(t.overload.policy, Policy::ShortestRemaining);
        for knobs in [&t.idle, &t.steady, &t.burst, &t.overload] {
            assert_eq!(knobs.prefill_chunk, cfg.prefill_chunk);
            assert_eq!(knobs.admission_tokens_per_s, None);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn tuned_table_prices_knobs_and_meters_overload() {
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let model = ModelConfig::gpt_neo_1_3b();
        let device = DeviceSpec::a100();
        let cfg = ServeConfig::default();
        let t = PolicyTable::tuned(&tuner, &model, &device, &cfg).unwrap();
        assert!(CHUNK_CANDIDATES.contains(&t.steady.prefill_chunk));
        assert!(CHUNK_CANDIDATES.contains(&t.burst.prefill_chunk));
        // The tuned table never prices FIFO or shortest-remaining in:
        // prefill priority is a strict first-token win at every load, and
        // under overload the admission meter does the shedding.
        assert_eq!(t.steady.policy, Policy::PreemptivePriority);
        assert_eq!(t.burst.policy, Policy::PreemptivePriority);
        assert_eq!(t.overload.policy, Policy::PreemptivePriority);
        let rate = t.overload.admission_tokens_per_s.unwrap();
        assert!(rate.is_finite() && rate > 0.0);
        // Deterministic: repricing answers identically (cache-backed).
        let again = PolicyTable::tuned(&tuner, &model, &device, &cfg).unwrap();
        assert_eq!(again, t);
    }
}
