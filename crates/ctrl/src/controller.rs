//! Regime classification and the feedback controller.

use std::sync::Mutex;

use resoftmax_serve::{
    ControlAction, ControlDecision, ControlInit, ControlPlane, FleetSignals, ServeConfig,
};

use crate::table::PolicyTable;

/// The classified load regime. Knob sets are chosen per regime (see
/// [`PolicyTable`]), so the classifier's hysteresis is what keeps the
/// fleet from thrashing its configuration between adjacent samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Nothing queued and nothing running.
    Idle,
    /// Arrivals are absorbed without sustained queue growth.
    Steady,
    /// Queue pressure exceeds the active batch capacity: prefills back up.
    Burst,
    /// Pressure far exceeds capacity; completions alone cannot drain it.
    Overload,
}

impl Regime {
    /// Stable lowercase label, recorded verbatim in the decision log.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Idle => "idle",
            Regime::Steady => "steady",
            Regime::Burst => "burst",
            Regime::Overload => "overload",
        }
    }
}

/// Hysteretic regime classifier over the *load* signal: total queue depth
/// divided by the fleet's active batch capacity (accepting replicas ×
/// `max_batch`). Entry thresholds sit above exit thresholds, so a load
/// oscillating inside the band does not flap the regime.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeClassifier {
    burst_enter: f64,
    burst_exit: f64,
    overload_enter: f64,
    overload_exit: f64,
    current: Regime,
}

impl Default for RegimeClassifier {
    fn default() -> Self {
        RegimeClassifier {
            burst_enter: 1.5,
            burst_exit: 0.75,
            overload_enter: 4.0,
            overload_exit: 2.0,
            current: Regime::Steady,
        }
    }
}

impl RegimeClassifier {
    /// A classifier with the default thresholds (burst 1.5↑/0.75↓,
    /// overload 4.0↑/2.0↓ in queue-per-batch-slot units), starting steady.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current regime without reclassifying.
    pub fn current(&self) -> Regime {
        self.current
    }

    /// Classifies one sample: `load` is queue depth per active batch slot,
    /// `idle` is "nothing queued and nothing running".
    pub fn classify(&mut self, load: f64, idle: bool) -> Regime {
        self.current = if idle {
            Regime::Idle
        } else {
            match self.current {
                Regime::Overload => {
                    if load >= self.overload_exit {
                        Regime::Overload
                    } else if load >= self.burst_exit {
                        Regime::Burst
                    } else {
                        Regime::Steady
                    }
                }
                Regime::Burst => {
                    if load >= self.overload_enter {
                        Regime::Overload
                    } else if load >= self.burst_exit {
                        Regime::Burst
                    } else {
                        Regime::Steady
                    }
                }
                Regime::Idle | Regime::Steady => {
                    if load >= self.overload_enter {
                        Regime::Overload
                    } else if load >= self.burst_enter {
                        Regime::Burst
                    } else {
                        Regime::Steady
                    }
                }
            }
        };
        self.current
    }
}

/// Controller cadence and scaling thresholds. All times are simulated
/// seconds; loads are in queue-per-batch-slot units (the classifier's
/// signal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Decision period.
    pub interval_s: f64,
    /// Sliding-window width for the fleet's TTFT/TBT signal percentiles.
    pub window_s: f64,
    /// When the first decision fires.
    pub first_decision_s: f64,
    /// Scale standby replicas up when load reaches this.
    pub scale_up_load: f64,
    /// Demand sizing: each scale-up decision recruits enough standbys to
    /// bring the projected load back down to this (at least one). Must sit
    /// between `scale_down_load` and `scale_up_load` or the fleet flaps.
    pub scale_target_load: f64,
    /// Scale the most recent activation back down when load falls to this
    /// (and the regime is steady or idle).
    pub scale_down_load: f64,
    /// Minimum time between scaling actions — with the gap between
    /// `scale_up_load` and `scale_down_load`, this is the anti-flap
    /// guarantee.
    pub cooldown_s: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            interval_s: 0.25,
            window_s: 2.0,
            first_decision_s: 0.25,
            scale_up_load: 1.5,
            scale_target_load: 1.0,
            scale_down_load: 0.5,
            cooldown_s: 1.0,
        }
    }
}

#[derive(Debug)]
struct CtrlState {
    classifier: RegimeClassifier,
    applied_regime: Option<Regime>,
    /// Replicas this controller scaled up, in activation order; scale-downs
    /// pop the most recent so the fleet returns to its base footprint.
    activated: Vec<usize>,
    last_scale_s: f64,
    admission_on: bool,
}

impl CtrlState {
    fn fresh() -> Self {
        CtrlState {
            classifier: RegimeClassifier::new(),
            applied_regime: None,
            activated: Vec::new(),
            last_scale_s: f64::NEG_INFINITY,
            admission_on: false,
        }
    }
}

/// The feedback controller: classifies the load regime each interval,
/// switches the fleet to that regime's [`PolicyTable`] knobs on regime
/// *changes* (never per sample), and auto-scales standby replicas against
/// queue pressure with a cooldown.
///
/// Implements [`ControlPlane`] with interior mutability;
/// [`begin`](ControlPlane::begin) resets all state, so reruns of the same
/// fleet produce bit-identical reports.
#[derive(Debug)]
pub struct Controller {
    table: PolicyTable,
    config: ControllerConfig,
    state: Mutex<CtrlState>,
}

impl Controller {
    /// A controller over `table` with the default cadence and thresholds.
    pub fn new(table: PolicyTable) -> Self {
        Controller::with_config(table, ControllerConfig::default())
    }

    /// A controller over `table` with an explicit configuration.
    pub fn with_config(table: PolicyTable, config: ControllerConfig) -> Self {
        Controller {
            table,
            config,
            state: Mutex::new(CtrlState::fresh()),
        }
    }

    /// The regime→knob table this controller actuates.
    pub fn table(&self) -> &PolicyTable {
        &self.table
    }

    /// The cadence and thresholds this controller runs with.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }
}

impl ControlPlane for Controller {
    fn begin(&self, _cfg: &ServeConfig) -> ControlInit {
        *self.state.lock().expect("controller state poisoned") = CtrlState::fresh();
        ControlInit {
            first_decision_s: self.config.first_decision_s,
            window_s: self.config.window_s,
        }
    }

    fn decide(&self, signals: &FleetSignals) -> ControlDecision {
        let mut st = self.state.lock().expect("controller state poisoned");
        let active = signals.replicas.iter().filter(|r| r.accepting).count();
        let running: usize = signals.replicas.iter().map(|r| r.running).sum();
        let idle = signals.queue_depth == 0 && running == 0;
        let slots = (active.max(1) * signals.max_batch.max(1)) as f64;
        let load = signals.queue_depth as f64 / slots;
        let regime = st.classifier.classify(load, idle);

        let mut actions = Vec::new();
        if st.applied_regime != Some(regime) {
            let knobs = self.table.knobs(regime);
            actions.push(ControlAction::SetPolicy(knobs.policy));
            actions.push(ControlAction::SetPrefillChunk(knobs.prefill_chunk));
            match knobs.admission_tokens_per_s {
                Some(per_replica) => {
                    // The table prices admission per prefill-capable
                    // replica; scale to however many are in rotation now.
                    let prefill = signals
                        .replicas
                        .iter()
                        .filter(|r| r.accepting && r.role.prefill_capable())
                        .count();
                    let rate = per_replica * prefill.max(1) as f64;
                    actions.push(ControlAction::SetAdmission {
                        tokens_per_s: rate,
                        burst_tokens: rate,
                    });
                    st.admission_on = true;
                }
                None => {
                    if st.admission_on {
                        actions.push(ControlAction::ClearAdmission);
                        st.admission_on = false;
                    }
                }
            }
            st.applied_regime = Some(regime);
            resoftmax_obs::counter("ctrl.regime_changes").incr();
        }

        let cooled = signals.now_s - st.last_scale_s >= self.config.cooldown_s;
        let warming = signals.replicas.iter().any(|r| r.warming);
        if load >= self.config.scale_up_load && cooled && !warming {
            // Recruit enough standbys in one decision to bring the
            // projected load back to the target. Trickling one replica per
            // cooldown would point the least-loaded router's entire arrival
            // stream at a single fresh (empty) replica, serializing a
            // convoy of prefills behind each other — the one queue
            // preemptive priority cannot jump.
            let want = ((signals.queue_depth as f64
                / (self.config.scale_target_load * signals.max_batch.max(1) as f64))
                .ceil() as usize)
                .saturating_sub(active)
                .max(1);
            let mut recruited = 0usize;
            for r in signals.replicas.iter().filter(|r| r.standby && !r.warming) {
                if recruited == want {
                    break;
                }
                actions.push(ControlAction::ScaleUp { replica: r.id });
                st.activated.push(r.id);
                recruited += 1;
            }
            if recruited > 0 {
                st.last_scale_s = signals.now_s;
            }
        } else if load <= self.config.scale_down_load
            && matches!(regime, Regime::Idle | Regime::Steady)
            && cooled
        {
            if let Some(&target) = st.activated.last() {
                st.activated.pop();
                // A replica that faulted while active is simply forgotten;
                // scaling down a non-accepting replica would be rejected.
                if signals
                    .replicas
                    .iter()
                    .any(|r| r.id == target && r.accepting)
                {
                    actions.push(ControlAction::ScaleDown { replica: target });
                    st.last_scale_s = signals.now_s;
                }
            }
        }

        ControlDecision {
            regime: regime.label().to_owned(),
            actions,
            next_s: signals.now_s + self.config.interval_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_holds_the_regime_inside_the_band() {
        let mut c = RegimeClassifier::new();
        assert_eq!(c.classify(0.2, false), Regime::Steady);
        assert_eq!(c.classify(1.6, false), Regime::Burst);
        // Oscillating between the burst exit (0.75) and entry (1.5)
        // thresholds must NOT flap the regime.
        for _ in 0..10 {
            assert_eq!(c.classify(1.0, false), Regime::Burst);
            assert_eq!(c.classify(1.4, false), Regime::Burst);
            assert_eq!(c.classify(0.8, false), Regime::Burst);
        }
        assert_eq!(c.classify(0.5, false), Regime::Steady);
        // Same load that held Burst above now holds Steady from below.
        for _ in 0..10 {
            assert_eq!(c.classify(1.0, false), Regime::Steady);
            assert_eq!(c.classify(1.4, false), Regime::Steady);
        }
    }

    #[test]
    fn overload_enters_high_and_exits_low() {
        let mut c = RegimeClassifier::new();
        assert_eq!(c.classify(4.5, false), Regime::Overload);
        // Below the entry (4.0) but above the exit (2.0): still overloaded.
        assert_eq!(c.classify(3.0, false), Regime::Overload);
        assert_eq!(c.classify(2.1, false), Regime::Overload);
        // Below the exit it steps down to Burst, not straight to Steady.
        assert_eq!(c.classify(1.2, false), Regime::Burst);
        assert_eq!(c.classify(0.1, false), Regime::Steady);
    }

    #[test]
    fn idle_wins_whenever_nothing_is_in_flight() {
        let mut c = RegimeClassifier::new();
        assert_eq!(c.classify(5.0, false), Regime::Overload);
        assert_eq!(c.classify(0.0, true), Regime::Idle);
        assert_eq!(c.current(), Regime::Idle);
    }

    #[test]
    fn regime_labels_are_stable() {
        assert_eq!(Regime::Idle.label(), "idle");
        assert_eq!(Regime::Steady.label(), "steady");
        assert_eq!(Regime::Burst.label(), "burst");
        assert_eq!(Regime::Overload.label(), "overload");
    }
}
