//! Decision-log replay: recorded control decisions as a control plane.

use std::sync::Mutex;

use resoftmax_serve::{
    ControlDecision, ControlInit, ControlPlane, ControlRecord, FleetReport, FleetSignals,
    ServeConfig,
};

/// Replays a recorded decision log through the [`ControlPlane`] hook.
///
/// Decisions fire at exactly the recorded times with exactly the recorded
/// actions, ignoring the live signals; the fleet re-validates each action
/// against its own state, so running the same workload under a `Replay` of
/// a controller's log reproduces that controller's report bit-for-bit —
/// including the `applied` flags the replayed records carry. This is the
/// auditability contract: a control decision is data, not a side effect.
#[derive(Debug)]
pub struct Replay {
    records: Vec<ControlRecord>,
    window_s: f64,
    cursor: Mutex<usize>,
}

impl Replay {
    /// A replay over `records` (in recorded order). `window_s` must match
    /// the original controller's signal-window width — the width is not
    /// part of the record — and must be positive and finite.
    pub fn new(records: Vec<ControlRecord>, window_s: f64) -> Self {
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "replay window width {window_s} must be positive and finite"
        );
        Replay {
            records,
            window_s,
            cursor: Mutex::new(0),
        }
    }

    /// A replay of `report.decisions`.
    pub fn from_report(report: &FleetReport, window_s: f64) -> Self {
        Replay::new(report.decisions.clone(), window_s)
    }

    /// How many decisions the log holds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty (such a replay never fires).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl ControlPlane for Replay {
    fn begin(&self, _cfg: &ServeConfig) -> ControlInit {
        *self.cursor.lock().expect("replay cursor poisoned") = 0;
        ControlInit {
            first_decision_s: self.records.first().map_or(f64::INFINITY, |r| r.at_s),
            window_s: self.window_s,
        }
    }

    fn decide(&self, signals: &FleetSignals) -> ControlDecision {
        let mut cur = self.cursor.lock().expect("replay cursor poisoned");
        let Some(rec) = self.records.get(*cur) else {
            // Defensive: the fleet never asks past the last record because
            // that record's `next_s` is infinite.
            return ControlDecision {
                regime: "replay-exhausted".to_owned(),
                actions: Vec::new(),
                next_s: f64::INFINITY,
            };
        };
        debug_assert_eq!(
            rec.at_s, signals.now_s,
            "replayed decision fired off its recorded time"
        );
        *cur += 1;
        ControlDecision {
            regime: rec.regime.clone(),
            actions: rec.actions.clone(),
            next_s: self.records.get(*cur).map_or(f64::INFINITY, |r| r.at_s),
        }
    }
}
