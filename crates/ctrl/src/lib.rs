//! Adaptive serving control plane: closes the loop between observation,
//! tuning, and the fleet.
//!
//! The serving crate's [`Fleet`](resoftmax_serve::Fleet) exposes a
//! [`ControlPlane`](resoftmax_serve::ControlPlane) hook: a fifth event
//! source on the simulated clock that snapshots fleet signals, asks a
//! controller to decide, and applies the returned actions. This crate is
//! the controller side of that contract:
//!
//! - [`RegimeClassifier`] turns windowed signals (queue depth per active
//!   batch slot, TTFT/TBT percentiles, KV occupancy) into a load *regime* —
//!   idle, steady, burst, or overload — with hysteresis so the regime does
//!   not flap between adjacent samples.
//! - [`PolicyTable`] maps each regime to a knob set ([`RegimeKnobs`]):
//!   scheduling policy, chunked-prefill budget, and optional token-bucket
//!   admission rate. [`PolicyTable::tuned`] prices the numeric knobs
//!   through the [`Tuner`](resoftmax_tune::Tuner) — the regime→knob choices
//!   are seeded from the same persisted tuning database the rest of the
//!   repo uses, which is what "closing the loop" means here.
//! - [`Controller`] combines both and adds decode-replica auto-scaling:
//!   standby replicas scale up when queue pressure crosses a threshold
//!   (warm-up priced as the model weights streaming over the link) and
//!   scale back down when pressure subsides, with a cooldown so steady
//!   state never flaps.
//! - [`Replay`] feeds a recorded decision log back through the hook,
//!   reproducing a controlled run's report bit-for-bit — decisions are
//!   data, not side effects.
//!
//! Everything is deterministic in the signal sequence, so controlled fleet
//! reports stay bit-identical across host thread counts, reruns, and
//! sim-cache states.
//!
//! ```
//! use resoftmax_ctrl::{Controller, PolicyTable};
//! use resoftmax_gpusim::DeviceSpec;
//! use resoftmax_model::{ModelConfig, RunParams};
//! use resoftmax_serve::{FleetBuilder, ServeConfig};
//!
//! let cfg = ServeConfig {
//!     requests: 8,
//!     ..ServeConfig::default()
//! };
//! let controller = Controller::new(PolicyTable::static_default(&cfg));
//! let report = FleetBuilder::new()
//!     .model(ModelConfig::gpt_neo_1_3b())
//!     .params(RunParams::new(4096))
//!     .replicas(2, &DeviceSpec::a100())
//!     .standby_replicas(1, &DeviceSpec::a100())
//!     .control_plane(&controller)
//!     .workload(cfg)
//!     .build()?
//!     .run()?;
//! assert_eq!(report.completed, 8);
//! assert!(!report.decisions.is_empty());
//! # Ok::<(), resoftmax_serve::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod replay;
mod table;

pub use controller::{Controller, ControllerConfig, Regime, RegimeClassifier};
pub use replay::Replay;
pub use table::{PolicyTable, RegimeKnobs};
