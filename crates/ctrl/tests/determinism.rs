//! The controlled fleet's report — decision log included — must be
//! bit-identical across host thread counts, reruns, and sim-cache states,
//! and a replay of the decision log must reproduce it exactly.

use resoftmax_ctrl::{Controller, PolicyTable, Replay};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams};
use resoftmax_serve::{phased_arrivals, ControlPlane, FleetBuilder, FleetReport, ServeConfig};

fn cfg() -> ServeConfig {
    ServeConfig {
        requests: 64,
        prompt_tokens: (128, 512),
        decode_tokens: (8, 32),
        max_batch: 4,
        ..ServeConfig::default()
    }
}

fn run_with(control: &dyn ControlPlane) -> FleetReport {
    let cfg = cfg();
    let trace = phased_arrivals(&cfg, &[(1.0, 4.0), (1.5, 32.0), (60.0, 2.0)]);
    FleetBuilder::new()
        .model(ModelConfig::gpt_neo_1_3b())
        .params(RunParams::new(4096))
        .replicas(1, &DeviceSpec::a100())
        .standby_replicas(1, &DeviceSpec::a100())
        .arrivals(trace)
        .control_plane(control)
        .workload(cfg)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

fn json(report: &FleetReport) -> String {
    serde_json::to_string(report).unwrap()
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end fleet simulation is too slow under miri")]
fn report_is_bit_identical_across_threads_reruns_and_cache_states() {
    let controller = Controller::new(PolicyTable::static_default(&cfg()));

    // First leg runs with a cold sim cache (within this process).
    resoftmax_parallel::set_thread_override(Some(1));
    let one = json(&run_with(&controller));
    // Second leg: different worker count, warm cache.
    resoftmax_parallel::set_thread_override(Some(4));
    let four = json(&run_with(&controller));
    // Third leg: ambient threads, warm cache, rerun of the same fleet.
    resoftmax_parallel::set_thread_override(None);
    let rerun = json(&run_with(&controller));

    assert_eq!(one, four, "1-thread and 4-thread reports diverge");
    assert_eq!(four, rerun, "rerun (warm sim cache) diverges");
    let stats = resoftmax_gpusim::sim_cache_stats();
    assert!(
        stats.hits > 0,
        "the warm legs must have exercised the sim cache"
    );
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end fleet simulation is too slow under miri")]
fn replaying_the_decision_log_reproduces_the_report() {
    let controller = Controller::new(PolicyTable::static_default(&cfg()));
    let original = run_with(&controller);
    assert!(
        !original.decisions.is_empty(),
        "nothing to replay — the controller never decided"
    );
    assert!(original.scale_ups >= 1, "want a run with real actuation");

    let replay = Replay::from_report(&original, controller.config().window_s);
    let replayed = run_with(&replay);
    assert_eq!(
        json(&original),
        json(&replayed),
        "replay must reproduce the controlled report bit-for-bit"
    );

    // Replay resets its cursor in begin(): a second replay works too.
    let again = run_with(&replay);
    assert_eq!(json(&replayed), json(&again));
}
