//! Behavioral tests: the controller scales against queue pressure, holds
//! still in steady state, and switches regimes with hysteresis.

use resoftmax_ctrl::{Controller, PolicyTable};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams};
use resoftmax_serve::{phased_arrivals, FleetBuilder, FleetReport, ServeConfig};

fn model() -> ModelConfig {
    ModelConfig::gpt_neo_1_3b()
}

fn burst_cfg() -> ServeConfig {
    ServeConfig {
        requests: 110,
        prompt_tokens: (128, 768),
        decode_tokens: (16, 128),
        max_batch: 4,
        ..ServeConfig::default()
    }
}

/// Calm → 2 s square-wave burst → long calm tail. The tail keeps arrivals
/// trickling while the backlog drains, so the controller sees low-load
/// decisions before the run ends.
fn burst_trace(cfg: &ServeConfig) -> Vec<resoftmax_serve::Arrival> {
    phased_arrivals(cfg, &[(1.0, 4.0), (2.0, 40.0), (60.0, 2.0)])
}

fn run_controlled(cfg: &ServeConfig, controller: &Controller) -> FleetReport {
    FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(1, &DeviceSpec::a100())
        .standby_replicas(2, &DeviceSpec::a100())
        .arrivals(burst_trace(cfg))
        .control_plane(controller)
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end fleet simulation is too slow under miri")]
fn controller_scales_up_under_burst_and_back_down() {
    let cfg = burst_cfg();
    let controller = Controller::new(PolicyTable::static_default(&cfg));
    let report = run_controlled(&cfg, &controller);

    assert_eq!(report.completed, cfg.requests);
    assert!(
        report.scale_ups >= 1,
        "the burst must scale a standby replica up: {report:?}"
    );
    assert!(
        report.scale_downs >= 1,
        "the drained tail must scale back down (scale_ups={}, decisions={})",
        report.scale_ups,
        report.decisions.len()
    );
    assert!(
        report.scale_downs <= report.scale_ups,
        "cannot scale down more than was scaled up"
    );
    // The burst actually registered as pressure.
    assert!(
        report
            .decisions
            .iter()
            .any(|d| d.regime == "burst" || d.regime == "overload"),
        "no burst/overload regime in the decision log"
    );
    // Every issued scaling action was valid against the fleet state.
    for d in &report.decisions {
        for (a, &ok) in d.actions.iter().zip(&d.applied) {
            assert!(
                ok,
                "controller issued an invalid action {a:?} at {}",
                d.at_s
            );
        }
    }
    // The standby replicas did real work after activation.
    let activated_iterations: usize = report.replicas.iter().skip(1).map(|r| r.iterations).sum();
    assert!(activated_iterations > 0, "activated replicas never stepped");
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end fleet simulation is too slow under miri")]
fn steady_fleet_never_scales_or_flaps() {
    let cfg = ServeConfig {
        requests: 24,
        arrival_rate_hz: 2.0,
        prompt_tokens: (128, 256),
        decode_tokens: (8, 16),
        max_batch: 4,
        ..ServeConfig::default()
    };
    let controller = Controller::new(PolicyTable::static_default(&cfg));
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .standby_replicas(1, &DeviceSpec::a100())
        .control_plane(&controller)
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();

    assert_eq!(report.completed, cfg.requests);
    assert_eq!(report.scale_ups, 0, "steady state must not scale up");
    assert_eq!(report.scale_downs, 0, "steady state must not scale down");
    for d in &report.decisions {
        assert!(
            d.regime == "steady" || d.regime == "idle",
            "unexpected regime {} at {}s in a steady workload",
            d.regime,
            d.at_s
        );
    }
    // The standby replica stayed parked and untouched.
    let parked = &report.replicas[2];
    assert!(parked.standby);
    assert_eq!(parked.iterations, 0);
}
