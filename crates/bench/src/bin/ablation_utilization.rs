//! Ablation: the bandwidth-utilization mechanism behind SD's sparse gains.
//!
//! §5.1 attributes SD's 1.44×/1.49× standalone speedup on BigBird/Longformer
//! to finer-grained thread-block allocation raising memory-bandwidth
//! utilization. This ablation prints the utilization curve for each device
//! and the SD speedup with the utilization model disabled (saturation point
//! pushed to ~0), isolating that mechanism.

use resoftmax_bench::PAPER_SEQ_LEN;
use resoftmax_core::format::{render_table, speedup};
use resoftmax_gpusim::{bandwidth, DeviceSpec};
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    // 1. The curve itself.
    println!("Bandwidth utilization vs concurrently memory-active threads:\n");
    let mut rows = Vec::new();
    for threads in [2048u32, 8192, 16384, 32768, 65536, 131072, 262144] {
        let mut row = vec![format!("{threads}")];
        for d in DeviceSpec::all_presets() {
            row.push(format!(
                "{:.2}",
                bandwidth::utilization(&d, f64::from(threads))
            ));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(&["threads", "A100", "RTX 3090", "T4"], &rows)
    );

    // 2. SD speedup with and without the utilization mechanism.
    println!("\nSD speedup on sparse models, with the utilization model on/off:\n");
    let mut rows = Vec::new();
    for model in [
        ModelConfig::bigbird_large(),
        ModelConfig::longformer_large(),
    ] {
        let mut cells = vec![model.name.clone()];
        for disable in [false, true] {
            let mut device = DeviceSpec::a100();
            if disable {
                // Saturation at ~1 thread: every kernel sees full bandwidth,
                // removing the allocation-granularity effect.
                device.mem_saturation_threads = 1.0;
            }
            let base = run_inference(&model, &RunParams::new(PAPER_SEQ_LEN), device.clone())
                .expect("launchable");
            let sd = run_inference(
                &model,
                &RunParams::new(PAPER_SEQ_LEN).strategy(SoftmaxStrategy::Decomposed),
                device,
            )
            .expect("launchable");
            cells.push(speedup(base.total_time_s() / sd.total_time_s()));
        }
        rows.push(cells);
    }
    print!(
        "{}",
        render_table(
            &["model", "SD speedup (model on)", "SD speedup (off)"],
            &rows
        )
    );
    println!("\nPaper §5.1: the sparse SD gain comes from utilization, not traffic —");
    println!("with the mechanism disabled, SD only adds traffic and the gain collapses.");
}
