//! Fig. 2: execution-time breakdown of BERT, GPT-Neo, BigBird and Longformer
//! (L = 4096, batch 1). Paper reference points: softmax uses 36% / 18% /
//! 40% / 42% of total time; BERT's SDA block uses 68%.

use resoftmax_bench::{device_from_args, json_requested, print_json, PAPER_SEQ_LEN};
use resoftmax_core::experiments::fig2_breakdown;
use resoftmax_core::format::{ms, pct, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let seq_len = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(PAPER_SEQ_LEN);

    let rows = fig2_breakdown(&device, seq_len).expect("launchable");
    if json_requested(&args) {
        print_json(&rows);
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                ms(r.total_ms),
                pct(r.matmul_sda_frac),
                pct(r.softmax_frac),
                pct(r.fc_frac),
                pct(r.feedforward_frac),
                pct(r.etc_frac),
                pct(r.sda_frac),
            ]
        })
        .collect();

    println!(
        "FIG 2: Execution time breakdown on {} (L={seq_len}, batch=1)",
        device.name
    );
    println!("Paper (A100, L=4096): softmax 36%/18%/40%/42%; BERT SDA 68%\n");
    print!(
        "{}",
        render_table(
            &[
                "model",
                "total",
                "MatMul(SDA)",
                "Softmax",
                "FC",
                "FeedForward",
                "etc.",
                "[SDA total]"
            ],
            &table
        )
    );
}
