//! Exports a simulated inference run as a Chrome-trace JSON file, viewable
//! in `chrome://tracing` or <https://ui.perfetto.dev> — softmax stretches
//! shrinking under SDF, the IR sliver, the fused MatMuls widening.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin export_trace -- bert sdf out.json
//! ```

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_gpusim::chrome_trace::to_chrome_trace;
use resoftmax_model::{ModelConfig, RunParams, Session, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let model = args
        .iter()
        .find_map(|a| match a.to_lowercase().as_str() {
            "bert" => Some(ModelConfig::bert_large()),
            "gpt" | "gpt-neo" => Some(ModelConfig::gpt_neo_1_3b()),
            "bigbird" => Some(ModelConfig::bigbird_large()),
            "longformer" => Some(ModelConfig::longformer_large()),
            _ => None,
        })
        .unwrap_or_else(ModelConfig::bert_large);
    let strategy = args
        .iter()
        .find_map(|a| match a.to_lowercase().as_str() {
            "baseline" => Some(SoftmaxStrategy::Baseline),
            "sd" => Some(SoftmaxStrategy::Decomposed),
            "sdf" => Some(SoftmaxStrategy::Recomposed),
            "online" => Some(SoftmaxStrategy::OnlineFused),
            _ => None,
        })
        .unwrap_or(SoftmaxStrategy::Recomposed);
    let path = args
        .iter()
        .find(|a| a.ends_with(".json"))
        .cloned()
        .unwrap_or_else(|| "trace.json".to_owned());

    let report = Session::builder()
        .model(model.clone())
        .device(device.clone())
        .params(RunParams::new(PAPER_SEQ_LEN))
        .strategy(strategy)
        .build()
        .expect("valid configuration")
        .run()
        .expect("launchable");
    let json = to_chrome_trace(&report.timeline);
    std::fs::write(&path, &json).expect("writable output path");
    println!(
        "wrote {path}: {} kernels, {:.2} ms simulated on {} ({}, {})",
        report.timeline.len(),
        report.total_time_s() * 1e3,
        device.name,
        model.name,
        strategy.label(),
    );
    println!("open in chrome://tracing or https://ui.perfetto.dev");
}
