//! Measures the wall-clock effect of the work-stealing runtime: runs the
//! static-analysis sweep and the full experiment suite at 1 thread and at
//! the configured thread count, checks the results are identical, and
//! writes the timings to `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin perf_baseline [-- out.json]
//! ```
//!
//! The thread count of the parallel leg honors `RESOFTMAX_THREADS` (else
//! all available cores); the serial leg pins the in-process override to 1,
//! so one invocation measures both legs on identical state.
//!
//! A final pair of legs measures the observability layer: the experiment
//! suite with the trace/metrics switches forced off and forced on. Rows
//! must be identical in both states; the report records the enabled-mode
//! overhead and how much the recorder captured.

use std::time::Instant;

use resoftmax_bench::{analysis_grid, PAPER_SEQ_LEN};
use resoftmax_core::experiments::{
    fig2_breakdown, fig5_sublayers, fig7_libraries, fig8_sd_sdf, fig9_batch_sweep, fig9_seq_sweep,
    gpu_speedup_matrix,
};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{build_schedule, check_schedule};
use serde::Serialize;

#[derive(Serialize)]
struct Leg {
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
}

impl Leg {
    fn new(serial_s: f64, parallel_s: f64) -> Leg {
        Leg {
            serial_s,
            parallel_s,
            speedup: serial_s / parallel_s,
        }
    }
}

#[derive(Serialize)]
struct ObsLeg {
    disabled_s: f64,
    enabled_s: f64,
    enabled_overhead: f64,
    spans_recorded: usize,
    streams_recorded: usize,
}

#[derive(Serialize)]
struct Report {
    threads_parallel: usize,
    analyze: Leg,
    experiments: Leg,
    total: Leg,
    observability: ObsLeg,
}

/// The `analyze` binary's sweep: every schedule built and statically checked.
fn run_analyze_sweep() -> (usize, usize) {
    let grid = analysis_grid();
    let results = resoftmax_parallel::parallel_map(&grid, |_, (model, params)| {
        let kernels = build_schedule(model, params);
        let report = check_schedule(model, params, &kernels);
        (kernels.len(), report.diagnostics.len())
    });
    results.iter().fold((0, 0), |(k, d), r| (k + r.0, d + r.1))
}

fn dump<T: Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("experiment rows serialize")
}

/// Every experiment driver `reproduce_all` prints, returned for comparison.
fn run_experiments() -> String {
    let a100 = DeviceSpec::a100();
    let fig2 = fig2_breakdown(&a100, PAPER_SEQ_LEN).expect("launchable");
    let fig5 = fig5_sublayers(&a100, PAPER_SEQ_LEN).expect("launchable");
    let fig7 = fig7_libraries(&a100, PAPER_SEQ_LEN).expect("launchable");
    let fig8 = fig8_sd_sdf(&a100, PAPER_SEQ_LEN, 1).expect("launchable");
    let fig9a = fig9_seq_sweep(&a100, &[512, 1024, 2048, 4096, 8192]).expect("launchable");
    let fig9b = fig9_batch_sweep(&a100, PAPER_SEQ_LEN, &[1, 2, 4, 8]).expect("launchable");
    let matrix = gpu_speedup_matrix(PAPER_SEQ_LEN).expect("launchable");
    [
        dump(&fig2),
        dump(&fig5),
        dump(&fig7),
        dump(&fig8),
        dump(&fig9a),
        dump(&fig9b),
        dump(&matrix),
    ]
    .join("\n")
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let threads = resoftmax_parallel::num_threads();

    // Serial leg: pin the runtime to one thread.
    resoftmax_parallel::set_thread_override(Some(1));
    let (analyze_serial, analyze_serial_s) = timed(run_analyze_sweep);
    let (rows_serial, experiments_serial_s) = timed(run_experiments);

    // Parallel leg: the configured thread count.
    resoftmax_parallel::set_thread_override(None);
    let (analyze_parallel, analyze_parallel_s) = timed(run_analyze_sweep);
    let (rows_parallel, experiments_parallel_s) = timed(run_experiments);

    assert_eq!(
        analyze_serial, analyze_parallel,
        "analysis sweep must not depend on thread count"
    );
    assert_eq!(
        rows_serial, rows_parallel,
        "experiment rows must be identical at any thread count"
    );

    // Observability legs: the full experiment suite with the switches forced
    // off, then forced on (spans + counters + sim streams recorded). Rows
    // must be identical — instrumentation observes, it never perturbs. The
    // disabled leg IS the default path (one relaxed atomic load per site),
    // so `experiments` above already measures the disabled cost.
    resoftmax_obs::set_trace_enabled(Some(false));
    resoftmax_obs::set_metrics_enabled(Some(false));
    let (rows_obs_off, obs_off_s) = timed(run_experiments);
    resoftmax_obs::set_trace_enabled(Some(true));
    resoftmax_obs::set_metrics_enabled(Some(true));
    resoftmax_obs::reset();
    let (rows_obs_on, obs_on_s) = timed(run_experiments);
    let spans_recorded = resoftmax_obs::recorder().spans().len();
    let streams_recorded = resoftmax_obs::recorder().sim_streams().len();
    resoftmax_obs::reset();
    resoftmax_obs::set_trace_enabled(Some(false));
    resoftmax_obs::set_metrics_enabled(Some(false));
    assert_eq!(
        rows_obs_off, rows_obs_on,
        "experiment rows must be identical with observability on or off"
    );

    let report = Report {
        threads_parallel: threads,
        analyze: Leg::new(analyze_serial_s, analyze_parallel_s),
        experiments: Leg::new(experiments_serial_s, experiments_parallel_s),
        total: Leg::new(
            analyze_serial_s + experiments_serial_s,
            analyze_parallel_s + experiments_parallel_s,
        ),
        observability: ObsLeg {
            disabled_s: obs_off_s,
            enabled_s: obs_on_s,
            enabled_overhead: obs_on_s / obs_off_s - 1.0,
            spans_recorded,
            streams_recorded,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark report");
    println!(
        "analyze sweep:  {:.3}s serial / {:.3}s at {} threads ({:.2}x)",
        report.analyze.serial_s, report.analyze.parallel_s, threads, report.analyze.speedup
    );
    println!(
        "experiments:    {:.3}s serial / {:.3}s at {} threads ({:.2}x)",
        report.experiments.serial_s,
        report.experiments.parallel_s,
        threads,
        report.experiments.speedup
    );
    println!(
        "observability:  {:.3}s disabled / {:.3}s enabled ({:+.1}% when on; {} spans, {} sim streams)",
        report.observability.disabled_s,
        report.observability.enabled_s,
        report.observability.enabled_overhead * 100.0,
        report.observability.spans_recorded,
        report.observability.streams_recorded,
    );
    println!("results identical across thread counts and observability states; report written to {out_path}");
}
