//! Table 1: specifications of the GPUs used in the evaluation.

use resoftmax_core::experiments::table1_devices;
use resoftmax_core::format::render_table;

fn main() {
    let devices = table1_devices();
    let mut rows = Vec::new();
    let spec_row = |label: &str, f: &dyn Fn(&resoftmax_gpusim::DeviceSpec) -> String| {
        let mut row = vec![label.to_owned()];
        row.extend(devices.iter().map(f));
        row
    };
    rows.push(spec_row("Memory Bandwidth (GB/s)", &|d| {
        format!("{:.1}", d.mem_bandwidth_gbps)
    }));
    rows.push(spec_row("TFLOPS (FP16 CUDA)*", &|d| {
        format!("{:.1}", d.fp16_cuda_tflops)
    }));
    rows.push(spec_row("TFLOPS (FP16 Tensor)*", &|d| {
        format!("{:.0}", d.fp16_tensor_tflops)
    }));
    rows.push(spec_row("L1 D$ per SM (KB)**", &|d| {
        format!("{}", d.l1_kb_per_sm)
    }));
    rows.push(spec_row("L2 (MB)", &|d| format!("{:.0}", d.l2_mb)));
    rows.push(spec_row("SMs", &|d| format!("{}", d.num_sms)));
    rows.push(spec_row("Tensor FLOP/Byte ratio", &|d| {
        format!("{:.0}", d.tensor_flops_per_byte())
    }));

    let mut headers = vec![""];
    let names: Vec<String> = devices.iter().map(|d| d.name.clone()).collect();
    headers.extend(names.iter().map(String::as_str));

    println!("TABLE 1: Specifications of the GPUs used in the evaluation");
    println!("(*peak rates at base clock; **combined L1/shared memory block)\n");
    print!("{}", render_table(&headers, &rows));
}
