//! Adaptive control-plane benchmark: static fleets vs a `resoftmax-ctrl`
//! controller under phase-shifting workloads (square-wave burst, diurnal
//! ramp, overload recovery, plus a steady-state parity guard). Writes
//! `BENCH_ctrl.json`.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin ctrl_sim [-- out.json] [--smoke]
//! ```
//!
//! Every scenario pins one arrival trace (via `phased_arrivals`) and runs
//! it through static fleets — one per scheduling policy on the base replica
//! set — and through an adaptive fleet: the same base replicas plus standby
//! capacity only the controller can recruit. The headline is the
//! square-wave burst: the adaptive fleet must beat the best static
//! configuration on TTFT p99 while the steady scenario shows it matches the
//! static fleet when there is nothing to adapt to. All metrics live on the
//! simulated clock, so `--smoke` asserts the rows are bit-identical at 1
//! and 4 host worker threads and across cold/warm kernel-pricing caches.

use resoftmax_ctrl::{Controller, PolicyTable};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams, SoftmaxStrategy};
use resoftmax_serve::{
    phased_arrivals, Arrival, ControlAction, FleetBuilder, FleetReport, LinkSpec, Policy,
    RouterPolicy, ServeConfig,
};
use resoftmax_tune::{SearchMode, SearchSpace, Tuner};
use serde::Serialize;

const PAPER_CTX: usize = 4096;

#[derive(Debug, Clone, Serialize)]
struct CtrlRow {
    scenario: String,
    label: String,
    adaptive: bool,
    report: FleetReport,
}

#[derive(Debug, Serialize)]
struct Headline {
    burst_adaptive_ttft_p99_s: f64,
    burst_best_static_ttft_p99_s: f64,
    burst_best_static_label: String,
    /// TTFT p99 improvement of adaptive over the best static burst fleet.
    burst_ttft_p99_speedup: f64,
    /// Adaptive-vs-static TTFT p99 ratio in steady state (≈ 1.0: the
    /// controller must cost nothing when there is nothing to adapt to).
    steady_parity_ratio: f64,
}

#[derive(Debug, Serialize)]
struct CtrlBench {
    headline: Headline,
    rows: Vec<CtrlRow>,
}

struct Scale {
    burst: usize,
    steady: usize,
    diurnal: usize,
    overload: usize,
}

impl Scale {
    fn full() -> Self {
        Scale {
            burst: 1200,
            steady: 400,
            diurnal: 800,
            overload: 600,
        }
    }

    fn smoke() -> Self {
        Scale {
            burst: 96,
            steady: 48,
            diurnal: 96,
            overload: 96,
        }
    }
}

/// Two A100s' worth of base capacity at `max_batch` 4 sits near 9 req/s for
/// the default prompt/decode mix — the phase rates below are chosen around
/// that: steady under it, bursts far over it.
fn workload(requests: usize) -> ServeConfig {
    ServeConfig {
        requests,
        max_batch: 4,
        max_iterations: 100_000_000,
        ..ServeConfig::default()
    }
}

fn base_builder() -> FleetBuilder<'static> {
    FleetBuilder::new()
        .model(ModelConfig::gpt_neo_1_3b())
        .params(RunParams::new(PAPER_CTX).strategy(SoftmaxStrategy::Recomposed))
        .router(RouterPolicy::LeastLoaded)
        .link(LinkSpec::nvlink())
}

fn run_static(scenario: &str, policy: Policy, cfg: &ServeConfig, trace: &[Arrival]) -> CtrlRow {
    let cfg = ServeConfig {
        policy,
        ..cfg.clone()
    };
    let report = base_builder()
        .replicas(2, &DeviceSpec::a100())
        .arrivals(trace.to_vec())
        .workload(cfg)
        .build()
        .expect("static fleet validates")
        .run()
        .expect("static fleet completes");
    assert_eq!(report.completed, report.submitted);
    CtrlRow {
        scenario: scenario.to_owned(),
        label: format!("static/{}", policy.name()),
        adaptive: false,
        report,
    }
}

fn run_adaptive(
    scenario: &str,
    controller: &Controller,
    cfg: &ServeConfig,
    trace: &[Arrival],
    disaggregated: bool,
) -> CtrlRow {
    let mut builder = base_builder();
    builder = if disaggregated {
        builder
            .prefill_replicas(1, &DeviceSpec::a100())
            .decode_replicas(2, &DeviceSpec::a100())
            .standby_decode_replicas(2, &DeviceSpec::a100())
    } else {
        builder
            .replicas(2, &DeviceSpec::a100())
            .standby_replicas(2, &DeviceSpec::a100())
    };
    let report = builder
        .arrivals(trace.to_vec())
        .control_plane(controller)
        .workload(cfg.clone())
        .build()
        .expect("adaptive fleet validates")
        .run()
        .expect("adaptive fleet completes");
    assert_eq!(report.completed, report.submitted);
    CtrlRow {
        scenario: scenario.to_owned(),
        label: "adaptive/controller".to_owned(),
        adaptive: true,
        report,
    }
}

fn best_static(rows: &[CtrlRow], scenario: &str) -> CtrlRow {
    rows.iter()
        .filter(|r| r.scenario == scenario && !r.adaptive)
        .min_by(|a, b| a.report.ttft.p99_s.total_cmp(&b.report.ttft.p99_s))
        .expect("scenario has static rows")
        .clone()
}

fn run_bench(scale: &Scale) -> CtrlBench {
    let statics = [
        Policy::Fifo,
        Policy::ShortestRemaining,
        Policy::PreemptivePriority,
    ];
    // The regime→knob table is priced through the tuner (TuneDb-backed):
    // the same persisted-cacheable search that tunes kernels also seeds the
    // controller's chunk budgets and overload admission rate.
    let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
    let model = ModelConfig::gpt_neo_1_3b();
    let tuned_table = PolicyTable::tuned(&tuner, &model, &DeviceSpec::a100(), &workload(0))
        .expect("policy table tunes");
    let mut rows: Vec<CtrlRow> = Vec::new();

    // Scenario 1 — steady parity guard: comfortable constant rate; the
    // controller must not scale, and must match the static fleet.
    let steady_cfg = workload(scale.steady);
    let steady_trace = phased_arrivals(&steady_cfg, &[(1.0, 5.0)]);
    for p in statics {
        rows.push(run_static("steady", p, &steady_cfg, &steady_trace));
    }
    let steady_ctrl = Controller::new(tuned_table.clone());
    let steady_adaptive = run_adaptive("steady", &steady_ctrl, &steady_cfg, &steady_trace, false);
    assert_eq!(
        steady_adaptive.report.scale_ups, 0,
        "steady state must not scale up"
    );
    assert_eq!(
        steady_adaptive.report.scale_downs, 0,
        "steady state must not scale down"
    );
    rows.push(steady_adaptive);

    // Scenario 2 — square-wave burst (HEADLINE): 2 s bursts at 4× the base
    // capacity against 4 s calm valleys. Statics are stuck with their two
    // replicas; the controller recruits the standbys each burst and
    // releases them each valley.
    let burst_cfg = workload(scale.burst);
    let burst_trace = phased_arrivals(&burst_cfg, &[(4.0, 5.0), (2.0, 36.0)]);
    for p in statics {
        rows.push(run_static("burst", p, &burst_cfg, &burst_trace));
    }
    let burst_ctrl = Controller::new(tuned_table.clone());
    let burst_adaptive = run_adaptive("burst", &burst_ctrl, &burst_cfg, &burst_trace, false);
    assert!(
        burst_adaptive.report.scale_ups >= 1,
        "the burst must recruit standby capacity"
    );
    rows.push(burst_adaptive);

    // Scenario 3 — diurnal ramp on a disaggregated fleet: arrival rate
    // climbs over and back under the two dedicated decode replicas'
    // capacity; standby decode replicas absorb the peak and drain off it.
    let diurnal_cfg = workload(scale.diurnal);
    let diurnal_trace = phased_arrivals(
        &diurnal_cfg,
        &[
            (2.0, 2.0),
            (2.0, 5.0),
            (2.0, 10.0),
            (2.0, 16.0),
            (2.0, 10.0),
            (2.0, 5.0),
        ],
    );
    for p in statics {
        rows.push(run_static("diurnal", p, &diurnal_cfg, &diurnal_trace));
    }
    // The ramp crests gently compared to the square-wave burst, so this
    // controller scales at lower pressure (and cools down longer, keeping
    // the churn bound tight).
    let diurnal_ctrl = Controller::with_config(
        PolicyTable::static_default(&diurnal_cfg),
        resoftmax_ctrl::ControllerConfig {
            scale_up_load: 1.0,
            scale_down_load: 0.3,
            cooldown_s: 1.5,
            ..resoftmax_ctrl::ControllerConfig::default()
        },
    );
    let diurnal_adaptive =
        run_adaptive("diurnal", &diurnal_ctrl, &diurnal_cfg, &diurnal_trace, true);
    assert!(
        diurnal_adaptive.report.scale_ups >= 1,
        "the ramp peak must scale decode capacity up"
    );
    assert!(
        diurnal_adaptive.report.scale_downs >= 1,
        "the ramp trough must scale decode capacity back down"
    );
    // The ramp phases average 8 req/s over a 12 s cycle; hysteresis must
    // bound churn to at most two scale-up/down pairs per cycle — tracking
    // the diurnal wave is adaptation, re-deciding within one is flap.
    let diurnal_cycles = (scale.diurnal as f64 / (8.0 * 12.0)).ceil();
    let churn_cap = (4.0 * diurnal_cycles) as usize;
    assert!(
        diurnal_adaptive.report.scale_ups + diurnal_adaptive.report.scale_downs <= churn_cap,
        "hysteresis must bound scaling churn, got {} ups / {} downs over ~{} cycles",
        diurnal_adaptive.report.scale_ups,
        diurnal_adaptive.report.scale_downs,
        diurnal_cycles
    );
    rows.push(diurnal_adaptive);

    // Scenario 4 — overload recovery: a hard overshoot, then a long calm
    // tail. The tuned table meters admission under overload and the
    // decision log must show the regime entering *and* leaving overload.
    let overload_cfg = workload(scale.overload);
    // The spike has to outrun the controller's scale-up (one replica per
    // cooldown) for the classifier to reach overload before capacity
    // catches up — hence 64 req/s, an order of magnitude over base.
    let overload_trace = phased_arrivals(&overload_cfg, &[(1.0, 5.0), (1.5, 64.0), (60.0, 3.0)]);
    for p in statics {
        rows.push(run_static("overload", p, &overload_cfg, &overload_trace));
    }
    let overload_ctrl = Controller::new(tuned_table);
    let overload_adaptive = run_adaptive(
        "overload",
        &overload_ctrl,
        &overload_cfg,
        &overload_trace,
        false,
    );
    let regimes: Vec<&str> = overload_adaptive
        .report
        .decisions
        .iter()
        .map(|d| d.regime.as_str())
        .collect();
    let entered = regimes.iter().position(|&r| r == "overload");
    assert!(entered.is_some(), "the overshoot must classify as overload");
    assert!(
        regimes[entered.unwrap()..].iter().any(|&r| r != "overload"),
        "the calm tail must recover out of overload"
    );
    assert!(
        overload_adaptive.report.decisions.iter().any(|d| {
            d.actions
                .iter()
                .zip(&d.applied)
                .any(|(a, &ok)| ok && matches!(a, ControlAction::SetAdmission { .. }))
        }),
        "overload must arm tuned admission control"
    );
    rows.push(overload_adaptive);

    // Headline numbers + acceptance gates.
    let burst_best = best_static(&rows, "burst");
    let burst_adaptive = rows
        .iter()
        .find(|r| r.scenario == "burst" && r.adaptive)
        .expect("burst has an adaptive row");
    assert!(
        burst_adaptive.report.completed >= burst_best.report.completed,
        "adaptive must complete no fewer requests than the best static"
    );
    assert!(
        burst_adaptive.report.ttft.p99_s <= burst_best.report.ttft.p99_s,
        "HEADLINE: adaptive TTFT p99 {:.3}s must beat best static ({}) {:.3}s",
        burst_adaptive.report.ttft.p99_s,
        burst_best.label,
        burst_best.report.ttft.p99_s
    );
    let steady_best = best_static(&rows, "steady");
    let steady_adaptive = rows
        .iter()
        .find(|r| r.scenario == "steady" && r.adaptive)
        .expect("steady has an adaptive row");
    let steady_parity_ratio = steady_adaptive.report.ttft.p99_s / steady_best.report.ttft.p99_s;
    assert!(
        steady_parity_ratio <= 1.05,
        "adaptive must match the best static in steady state, ratio {steady_parity_ratio:.3}"
    );

    CtrlBench {
        headline: Headline {
            burst_adaptive_ttft_p99_s: burst_adaptive.report.ttft.p99_s,
            burst_best_static_ttft_p99_s: burst_best.report.ttft.p99_s,
            burst_best_static_label: burst_best.label.clone(),
            burst_ttft_p99_speedup: burst_best.report.ttft.p99_s / burst_adaptive.report.ttft.p99_s,
            steady_parity_ratio,
        },
        rows,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_ctrl.json".to_owned());

    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let bench = if smoke {
        // Determinism gate: decision logs and reports must be bit-identical
        // regardless of host worker threads...
        resoftmax_parallel::set_thread_override(Some(1));
        let serial = run_bench(&scale);
        resoftmax_parallel::set_thread_override(Some(4));
        let parallel = run_bench(&scale);
        resoftmax_parallel::set_thread_override(None);
        let ser = serde_json::to_string(&serial).expect("rows serialize");
        let par = serde_json::to_string(&parallel).expect("rows serialize");
        assert_eq!(ser, par, "ctrl rows must be identical at 1 vs 4 threads");
        println!("smoke: rows bit-identical at 1 and 4 worker threads");
        // ...and across cold/warm kernel-pricing caches.
        let warm = run_bench(&scale);
        let wrm = serde_json::to_string(&warm).expect("rows serialize");
        assert_eq!(ser, wrm, "ctrl rows must be identical with a warm cache");
        let stats = resoftmax_gpusim::sim_cache_stats();
        println!(
            "smoke: warm-cache leg bit-identical (pricing cache: {} entries, \
             {} hits, {} misses)",
            stats.kernel_entries, stats.hits, stats.misses
        );
        serial
    } else {
        run_bench(&scale)
    };

    for r in &bench.rows {
        let rep = &r.report;
        println!(
            "{:<10} {:<22} {:>6} reqs  ttft p50/p99 {:7.3}/{:7.3}s  tbt p50 \
             {:5.1}ms  preempt {:4}  scale +{}/-{}  decisions {:4}",
            r.scenario,
            r.label,
            rep.completed,
            rep.ttft.p50_s,
            rep.ttft.p99_s,
            rep.tbt.p50_s * 1e3,
            rep.preemptions,
            rep.scale_ups,
            rep.scale_downs,
            rep.decisions.len(),
        );
    }
    let h = &bench.headline;
    println!(
        "\nheadline: burst TTFT p99 adaptive {:.3}s vs best static {:.3}s ({}) — \
         {:.2}x better; steady parity ratio {:.3}",
        h.burst_adaptive_ttft_p99_s,
        h.burst_best_static_ttft_p99_s,
        h.burst_best_static_label,
        h.burst_ttft_p99_speedup,
        h.steady_parity_ratio,
    );
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark report");
    println!("report written to {out_path}");
}
