//! Ablation: sensitivity of the headline result to the calibration.
//!
//! EXPERIMENTS.md fits one per-device constant (`mem_saturation_threads`)
//! and a handful of kernel-class efficiencies. This sweep perturbs the
//! device-level constant ±2× and the launch overhead 0–16 µs, showing that
//! the qualitative result (SDF speedup ordering across the four models) is
//! not an artifact of the fit.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::format::{render_table, speedup};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn sdf_speedup(model: &ModelConfig, device: &DeviceSpec) -> f64 {
    let base =
        run_inference(model, &RunParams::new(PAPER_SEQ_LEN), device.clone()).expect("launchable");
    let sdf = run_inference(
        model,
        &RunParams::new(PAPER_SEQ_LEN).strategy(SoftmaxStrategy::Recomposed),
        device.clone(),
    )
    .expect("launchable");
    base.total_time_s() / sdf.total_time_s()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base_device = device_from_args(&args);
    let models = ModelConfig::all_eval_models();

    println!(
        "ABLATION: calibration sensitivity on {} (L={PAPER_SEQ_LEN})\n",
        base_device.name
    );

    println!("SDF speedup vs mem_saturation_threads (×0.5 / fitted / ×2):");
    let mut rows = Vec::new();
    for scale in [0.5f64, 1.0, 2.0] {
        let mut device = base_device.clone();
        device.mem_saturation_threads *= scale;
        let mut cells = vec![format!("x{scale}")];
        for m in &models {
            cells.push(speedup(sdf_speedup(m, &device)));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("saturation".to_owned())
        .chain(models.iter().map(|m| m.name.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print!("{}", render_table(&header_refs, &rows));

    println!("\nSDF speedup vs kernel-launch overhead (0 / 4 / 16 µs):");
    let mut rows = Vec::new();
    for overhead in [0.0f64, 4.0, 16.0] {
        let mut device = base_device.clone();
        device.kernel_launch_overhead_us = overhead;
        let mut cells = vec![format!("{overhead} us")];
        for m in &models {
            cells.push(speedup(sdf_speedup(m, &device)));
        }
        rows.push(cells);
    }
    print!("{}", render_table(&header_refs, &rows));

    println!("\nIn every perturbation, every model still gains and GPT-Neo gains least;");
    println!("the sparse models' margin over BERT tracks the saturation constant (it IS");
    println!("the §5.1 utilization mechanism) but never inverts the headline conclusion.");
}
