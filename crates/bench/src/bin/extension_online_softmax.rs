//! Extension experiment: the paper's SDF vs fully fused online-softmax
//! attention (the §7-adjacent approach that later became FlashAttention).
//!
//! SDF eliminates the softmax layer's attention-matrix traffic but the
//! `x'` matrix still crosses DRAM twice (fused-QK write, fused-PV read).
//! Online softmax eliminates the attention matrix entirely. This experiment
//! quantifies how much headroom the paper's approach left on the table —
//! and where SDF remains competitive (short sequences, where the matrix is
//! small and the fused kernel's occupancy cost dominates).

use resoftmax_bench::device_from_args;
use resoftmax_core::format::{render_table, speedup};
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    println!(
        "EXTENSION: SDF vs fully fused online softmax on {} (batch 1)\n",
        device.name
    );
    let mut rows = Vec::new();
    for model in ModelConfig::all_eval_models() {
        for l in [1024usize, 4096, 8192] {
            let p = RunParams::new(l);
            let base = run_inference(&model, &p, device.clone()).expect("launchable");
            let sdf = run_inference(
                &model,
                &p.clone().strategy(SoftmaxStrategy::Recomposed),
                device.clone(),
            )
            .expect("launchable");
            let online = run_inference(
                &model,
                &p.strategy(SoftmaxStrategy::OnlineFused),
                device.clone(),
            )
            .expect("launchable");
            rows.push(vec![
                model.name.clone(),
                format!("{l}"),
                speedup(base.total_time_s() / sdf.total_time_s()),
                speedup(base.total_time_s() / online.total_time_s()),
                format!("{:.2}x", sdf.total_dram_bytes() / base.total_dram_bytes()),
                format!(
                    "{:.2}x",
                    online.total_dram_bytes() / base.total_dram_bytes()
                ),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "model",
                "L",
                "SDF speedup",
                "Online speedup",
                "SDF traffic",
                "Online traffic"
            ],
            &rows
        )
    );
    println!("\nSDF halves the attention-matrix traffic; online softmax removes it.");
    println!("The gap is the headroom FlashAttention later claimed.");
}
