//! Roofline report: how much of each model's schedule is memory-bound —
//! the paper's §3.1 motivating statistic, per strategy.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::format::{pct, render_table};
use resoftmax_gpusim::roofline::classify_timeline;
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    println!(
        "ROOFLINE: memory- vs compute-bound time on {} (L={PAPER_SEQ_LEN})\n",
        device.name
    );
    let mut rows = Vec::new();
    for model in ModelConfig::all_eval_models() {
        for strategy in [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed] {
            let r = run_inference(
                &model,
                &RunParams::new(PAPER_SEQ_LEN).strategy(strategy),
                device.clone(),
            )
            .expect("launchable");
            let report = classify_timeline(&device, &r.timeline);
            rows.push(vec![
                model.name.clone(),
                strategy.label().to_owned(),
                pct(report.memory_bound_fraction()),
                pct(report.compute_bound_time_s
                    / (report.memory_bound_time_s
                        + report.compute_bound_time_s
                        + report.launch_bound_time_s)),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &["model", "strategy", "memory-bound", "compute-bound"],
            &rows
        )
    );
    println!("\n§3.1: softmax's ~2.5 Op/B sits far below the >25 FLOP/B machine");
    println!("balance; recomposition moves that memory-bound time into the");
    println!("compute-side MatMuls, shifting the schedule toward compute-bound.");
}
