//! Runs the entire evaluation — every table, figure, ablation and extension —
//! in one invocation, printing the same output as the individual binaries.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin reproduce_all > results.txt
//! ```

use resoftmax_bench::PAPER_SEQ_LEN;
use resoftmax_core::experiments::{
    fig2_breakdown, fig5_sublayers, fig7_libraries, fig8_sd_sdf, fig9_batch_sweep, fig9_seq_sweep,
    gpu_speedup_matrix,
};
use resoftmax_core::format::{pct, render_table, speedup};
use resoftmax_core::verify::{verify_backward, verify_decomposition, verify_fusion, verify_online};
use resoftmax_gpusim::DeviceSpec;

fn header(s: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{s}");
    println!("{}", "=".repeat(72));
}

fn main() {
    let a100 = DeviceSpec::a100();

    header("NUMERIC VERIFICATION (Eq. 1/2/3, Fig. 6)");
    let eq = verify_decomposition(16, 1024, 64, 2026);
    println!(
        "decomposed vs monolithic softmax: f64 |Δ|max {:.1e}, f32 {:.1e}, fp16 {:.1e} ({} ULP)",
        eq.max_abs_f64, eq.max_abs_f32, eq.max_abs_fp16, eq.max_ulp_fp16
    );
    let fu = verify_fusion(256, 64, 64, 2027);
    println!(
        "fused pipeline vs unfused attention: f64 |Δ|max {:.1e}, fp16 {:.1e}",
        fu.max_abs_f64, fu.max_abs_fp16
    );
    println!(
        "Eq. 3 backward vs finite differences: |Δ|max {:.1e}",
        verify_backward(4, 64, 2028)
    );
    let online = verify_online(256, 64, 64, 2029);
    println!(
        "online softmax vs references: dense |Δ|max {:.1e}, block-sparse {:.1e}",
        online.dense_max_abs, online.sparse_max_abs
    );

    header("FIG 2: execution-time breakdown (A100, L=4096)");
    let rows = fig2_breakdown(&a100, PAPER_SEQ_LEN).expect("launchable");
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2} ms", r.total_ms),
                pct(r.softmax_frac),
                pct(r.sda_frac),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["model", "total", "softmax", "SDA"], &t)
    );

    header("FIG 5: LS/IR/GS shares (A100, L=4096, SD)");
    let rows = fig5_sublayers(&a100, PAPER_SEQ_LEN).expect("launchable");
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                pct(r.ls_time_frac),
                pct(r.ir_time_frac),
                pct(r.gs_time_frac),
            ]
        })
        .collect();
    print!("{}", render_table(&["model", "LS", "IR", "GS"], &t));

    header("FIG 7: library comparison (A100, L=4096)");
    let rows = fig7_libraries(&a100, PAPER_SEQ_LEN).expect("launchable");
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.library.clone(),
                format!("{:.2} ms", r.total_ms),
            ]
        })
        .collect();
    print!("{}", render_table(&["model", "library", "latency"], &t));

    header("FIG 8: SD / SDF vs baseline (A100, L=4096, batch 1)");
    let rows = fig8_sd_sdf(&a100, PAPER_SEQ_LEN, 1).expect("launchable");
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                speedup(r.sd_speedup),
                speedup(r.sdf_speedup),
                format!("{:.2}x", r.sdf_traffic),
                format!("{:.2}x less", 1.0 / r.softmax_traffic_ratio),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["model", "SD", "SDF", "SDF traffic", "softmax cut"], &t)
    );

    header("FIG 9(a): SDF speedup vs L (A100)");
    let pts = fig9_seq_sweep(&a100, &[512, 1024, 2048, 4096, 8192]).expect("launchable");
    let t: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                format!("{}", p.seq_len),
                speedup(p.sdf_speedup),
            ]
        })
        .collect();
    print!("{}", render_table(&["model", "L", "SDF"], &t));

    header("FIG 9(b): SDF speedup vs batch (A100, L=4096)");
    let pts = fig9_batch_sweep(&a100, PAPER_SEQ_LEN, &[1, 2, 4, 8]).expect("launchable");
    let t: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                format!("{}", p.batch),
                speedup(p.sdf_speedup),
            ]
        })
        .collect();
    print!("{}", render_table(&["model", "batch", "SDF"], &t));

    header("§5.1: per-GPU SDF speedups (L=4096)");
    let rows = gpu_speedup_matrix(PAPER_SEQ_LEN).expect("launchable");
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.model.clone(),
                speedup(r.sdf_speedup),
                pct(r.softmax_frac),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["device", "model", "SDF", "softmax frac"], &t)
    );

    println!("\nDone. Individual binaries offer more detail (fig*, ablation_*, extension_*).");
}
