//! Ablation: L2 capacity.
//!
//! The paper's traffic argument (§2.3) hinges on the attention matrix
//! dwarfing on-chip storage. This sweep scales the A100's L2 and shows when
//! the argument would break down: once L2 approaches the attention-matrix
//! size, the baseline's inter-kernel traffic starts getting filtered and
//! recomposition's advantage narrows.

use resoftmax_bench::PAPER_SEQ_LEN;
use resoftmax_core::format::{render_table, speedup};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let model = ModelConfig::bert_large();
    let mut rows = Vec::new();
    for l2_mb in [4.0f64, 40.0, 256.0, 1024.0] {
        let mut device = DeviceSpec::a100();
        device.l2_mb = l2_mb;
        let base = run_inference(&model, &RunParams::new(PAPER_SEQ_LEN), device.clone())
            .expect("launchable");
        let sdf = run_inference(
            &model,
            &RunParams::new(PAPER_SEQ_LEN).strategy(SoftmaxStrategy::Recomposed),
            device,
        )
        .expect("launchable");
        rows.push(vec![
            format!("{l2_mb:.0} MB"),
            format!("{:.2} GB", base.total_dram_bytes() / 1e9),
            format!("{:.2} GB", sdf.total_dram_bytes() / 1e9),
            speedup(base.total_time_s() / sdf.total_time_s()),
        ]);
    }
    println!("ABLATION: L2 capacity (A100 otherwise, BERT-large, L={PAPER_SEQ_LEN})");
    println!("Attention matrix: 512 MB — recomposition pays until L2 rivals it\n");
    print!(
        "{}",
        render_table(
            &["L2", "baseline traffic", "SDF traffic", "SDF speedup"],
            &rows
        )
    );
}
