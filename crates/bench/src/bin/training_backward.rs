//! §6 (Discussion): applying softmax recomposition to training.
//!
//! The paper's argument: Eq. 3 expresses the softmax backward pass purely in
//! terms of the *output* `Y`, so the forward pass never needs to store the
//! softmax *input* off-chip — recomposition (which avoids exactly that
//! store) stays legal in training. This binary demonstrates both halves:
//! the gradient check, and the traffic a naive input-stashing forward pass
//! would have added.

use resoftmax_core::format::{gb, render_table};
use resoftmax_core::verify::verify_backward;
use resoftmax_kernels::costs::AttnDims;

fn main() {
    println!("§6: Softmax recomposition in training\n");

    // 1. Eq. 3 is correct: backward-from-output matches finite differences.
    let worst = verify_backward(4, 64, 2026);
    println!(
        "Eq. 3 gradient check (backward from Y only) max |Δ| vs finite differences: {worst:.2e}"
    );
    assert!(worst < 1e-5, "gradient check failed");
    println!("=> the softmax input is never needed by the backward pass\n");

    // 2. What that saves: a forward pass that stashed softmax inputs would
    // write (and the backward re-read) one attention matrix per layer.
    let mut rows = Vec::new();
    for (model, layers, d_head, heads) in [
        ("BERT-large", 24usize, 64usize, 16usize),
        ("GPT-Neo-1.3B", 24, 128, 16),
    ] {
        let dims = AttnDims::new(4096, d_head, heads, 1);
        let per_layer = dims.attn_bytes() as f64;
        let stash = per_layer * layers as f64;
        rows.push(vec![
            model.to_owned(),
            gb(per_layer),
            gb(stash),
            gb(2.0 * stash),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "model",
                "softmax input / layer",
                "stash per fwd pass",
                "fwd write + bwd read avoided"
            ],
            &rows
        )
    );
    println!(
        "\n(L=4096, batch 1, FP16 — the storage the recomposed forward pass never materializes)"
    );
}
