//! Fig. 9: SDF speedup (a) over sequence length and (b) over batch size.
//! Paper: speedup grows with L for all four models; larger batches raise the
//! sparse models' speedup (at batch 8, softmax grows from 40% to 48% of
//! BigBird's time while MatMul shrinks from 17% to 10%).

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::experiments::{fig9_batch_sweep, fig9_seq_sweep, SweepPoint};
use resoftmax_core::format::{pct, render_table, speedup};

fn print_sweep(
    title: &str,
    key: &str,
    points: &[SweepPoint],
    key_of: impl Fn(&SweepPoint) -> usize,
) {
    println!("\n{title}");
    let mut models: Vec<String> = Vec::new();
    for p in points {
        if !models.contains(&p.model) {
            models.push(p.model.clone());
        }
    }
    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                format!("{}", key_of(p)),
                speedup(p.sdf_speedup),
                pct(p.softmax_frac),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["model", key, "SDF speedup", "softmax frac"], &table)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let mode = args
        .iter()
        .map(String::as_str)
        .find(|s| matches!(*s, "seq" | "batch" | "all"))
        .unwrap_or("all");

    if mode == "seq" || mode == "all" {
        let points = fig9_seq_sweep(&device, &[512, 1024, 2048, 4096, 8192]).expect("launchable");
        print_sweep(
            &format!(
                "FIG 9(a): SDF speedup vs sequence length on {}",
                device.name
            ),
            "L",
            &points,
            |p| p.seq_len,
        );
    }
    if mode == "batch" || mode == "all" {
        let points = fig9_batch_sweep(&device, PAPER_SEQ_LEN, &[1, 2, 4, 8]).expect("launchable");
        print_sweep(
            &format!(
                "FIG 9(b): SDF speedup vs batch size on {} (L={PAPER_SEQ_LEN})",
                device.name
            ),
            "batch",
            &points,
            |p| p.batch,
        );
    }
}
