//! Fig. 7: average execution time of existing GPU libraries vs the paper's
//! baseline, on BERT-large (dense) and BigBird-large (sparse), L = 4096.
//! Paper: TensorRT is the best dense library (< 1% from the baseline),
//! DeepSpeed the best sparse one (within ~8%); AutoTVM is 1.49× slower than
//! the baseline on BERT-large.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::experiments::fig7_libraries;
use resoftmax_core::format::{ms, render_table, speedup};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    let rows = fig7_libraries(&device, PAPER_SEQ_LEN).expect("launchable");
    for model in ["BERT-large", "BigBird-large"] {
        let ours = rows
            .iter()
            .find(|r| r.model == model && r.library == "Ours-baseline")
            .expect("baseline present")
            .total_ms;
        let table: Vec<Vec<String>> = rows
            .iter()
            .filter(|r| r.model == model)
            .map(|r| {
                vec![
                    r.library.clone(),
                    ms(r.total_ms),
                    speedup(r.total_ms / ours),
                ]
            })
            .collect();
        println!(
            "\nFIG 7: {model} on {} (L={PAPER_SEQ_LEN}, batch=1)",
            device.name
        );
        print!(
            "{}",
            render_table(&["library", "latency", "vs ours"], &table)
        );
    }
}
