//! Ablation: the sub-vector / tile width `T`.
//!
//! The paper (§3.3) requires `T` to equal the MatMul output-tile width and
//! observes transformer MatMuls use `T ≥ 64`; the IR overhead scales as
//! `1/T`. This sweep shows the SDF speedup and the intermediate-tensor
//! traffic as `T` varies.
//!
//! Every grid point is routed through the tuner's legality gate
//! (`resoftmax_tune::precheck`) before it is priced: illegal widths — the
//! grid deliberately includes `T = 48`, which does not divide `L = 4096` —
//! are reported as skipped with the analyzer's reason instead of panicking
//! mid-sweep. Rows land in `BENCH_ablation_tile.json` in the shared
//! `{bin, config, metric, value}` schema.

use resoftmax_bench::{write_report, BenchArgs, BenchRow, PAPER_SEQ_LEN};
use resoftmax_core::format::{render_table, speedup};
use resoftmax_kernels::costs::TileConfig;
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args = BenchArgs::parse();
    let device = resoftmax_bench::device_from_args(&args.rest);
    let model = ModelConfig::bert_large();
    let widths: &[usize] = if args.smoke {
        &[32, 48, 64]
    } else {
        &[16, 32, 48, 64, 128, 256]
    };

    let base =
        run_inference(&model, &RunParams::new(PAPER_SEQ_LEN), device.clone()).expect("launchable");

    let mut rows = Vec::new();
    let mut report = Vec::new();
    for &t in widths {
        let params = RunParams::new(PAPER_SEQ_LEN)
            .strategy(SoftmaxStrategy::Recomposed)
            .tile(TileConfig::new(64, t));
        // Legality gate first: skip-with-reason instead of panicking on
        // widths the schedule builder cannot honour.
        if let Err(skip) = resoftmax_tune::precheck(&model, &params) {
            rows.push(vec![
                format!("{t}"),
                "skipped".to_owned(),
                format!("{skip}"),
                "-".to_owned(),
            ]);
            continue;
        }
        let sdf = run_inference(&model, &params, device.clone()).expect("launchable");
        let intermediates_mb = {
            // m' + d' + r': 3 values per (row, sub-vector) per instance
            let n_sv = PAPER_SEQ_LEN / t;
            (3 * PAPER_SEQ_LEN * n_sv * 2 * 16) as f64 / 1e6
        };
        let ratio = base.total_time_s() / sdf.total_time_s();
        rows.push(vec![
            format!("{t}"),
            speedup(ratio),
            format!("{:.2}x", sdf.total_dram_bytes() / base.total_dram_bytes()),
            format!("{intermediates_mb:.0} MB"),
        ]);
        let config = format!("{}/{}/T{t}", model.name, device.name);
        report.push(BenchRow::new(
            "ablation_tile_size",
            &config,
            "sdf_speedup",
            ratio,
        ));
        report.push(BenchRow::new(
            "ablation_tile_size",
            &config,
            "traffic_ratio",
            sdf.total_dram_bytes() / base.total_dram_bytes(),
        ));
    }
    println!(
        "ABLATION: sub-vector length T on {} (BERT-large, L={PAPER_SEQ_LEN})",
        device.name
    );
    println!("Paper: T >= 64 in practice; m'/d'/r' overhead ~ 1/T\n");
    print!(
        "{}",
        render_table(
            &[
                "T",
                "SDF speedup",
                "SDF traffic vs base",
                "m'+d'+r' per layer"
            ],
            &rows
        )
    );
    write_report(&args.out_or("BENCH_ablation_tile.json"), &report);
}
