//! Ablation: the sub-vector / tile width `T`.
//!
//! The paper (§3.3) requires `T` to equal the MatMul output-tile width and
//! observes transformer MatMuls use `T ≥ 64`; the IR overhead scales as
//! `1/T`. This sweep shows the SDF speedup and the intermediate-tensor
//! traffic as `T` varies.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::format::{render_table, speedup};
use resoftmax_kernels::costs::TileConfig;
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let model = ModelConfig::bert_large();

    let base =
        run_inference(&model, &RunParams::new(PAPER_SEQ_LEN), device.clone()).expect("launchable");

    let mut rows = Vec::new();
    for t in [16usize, 32, 64, 128, 256] {
        let params = RunParams::new(PAPER_SEQ_LEN)
            .strategy(SoftmaxStrategy::Recomposed)
            .tile(TileConfig::new(64, t));
        let sdf = run_inference(&model, &params, device.clone()).expect("launchable");
        let intermediates_mb = {
            // m' + d' + r': 3 values per (row, sub-vector) per instance
            let n_sv = PAPER_SEQ_LEN / t;
            (3 * PAPER_SEQ_LEN * n_sv * 2 * 16) as f64 / 1e6
        };
        rows.push(vec![
            format!("{t}"),
            speedup(base.total_time_s() / sdf.total_time_s()),
            format!("{:.2}x", sdf.total_dram_bytes() / base.total_dram_bytes()),
            format!("{intermediates_mb:.0} MB"),
        ]);
    }
    println!(
        "ABLATION: sub-vector length T on {} (BERT-large, L={PAPER_SEQ_LEN})",
        device.name
    );
    println!("Paper: T >= 64 in practice; m'/d'/r' overhead ~ 1/T\n");
    print!(
        "{}",
        render_table(
            &[
                "T",
                "SDF speedup",
                "SDF traffic vs base",
                "m'+d'+r' per layer"
            ],
            &rows
        )
    );
}
