//! Extension experiment (§6): recomposition applied to a full *training*
//! iteration (forward + backward) of the dense models.
//!
//! The backward pass contains its own row-wise softmax kernel (Eq. 3's row
//! dot); decomposing that dot the same way the forward normalizer is
//! decomposed turns `dS` into an elementwise kernel and removes the last
//! barrier-bound row kernel from the training step.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::format::{ms, render_table, speedup};
use resoftmax_model::{
    run_inference, run_training_iteration, ModelConfig, RunParams, SoftmaxStrategy,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    println!(
        "EXTENSION (§6): training iteration, baseline vs recomposed, on {} (L={PAPER_SEQ_LEN})\n",
        device.name
    );
    let mut rows = Vec::new();
    for model in [
        ModelConfig::bert_large(),
        ModelConfig::gpt_neo_1_3b(),
        ModelConfig::bigbird_large(),
        ModelConfig::longformer_large(),
    ] {
        let p = RunParams::new(PAPER_SEQ_LEN);
        let base = run_training_iteration(&model, &p, device.clone()).expect("launchable");
        let sdf = run_training_iteration(
            &model,
            &p.clone().strategy(SoftmaxStrategy::Recomposed),
            device.clone(),
        )
        .expect("launchable");
        let inf_base = run_inference(&model, &p, device.clone()).expect("launchable");
        let inf_sdf = run_inference(
            &model,
            &p.strategy(SoftmaxStrategy::Recomposed),
            device.clone(),
        )
        .expect("launchable");
        rows.push(vec![
            model.name.clone(),
            ms(base.total_time_s() * 1e3),
            ms(sdf.total_time_s() * 1e3),
            speedup(base.total_time_s() / sdf.total_time_s()),
            speedup(inf_base.total_time_s() / inf_sdf.total_time_s()),
            format!(
                "{:.1} GB",
                (base.total_dram_bytes() - sdf.total_dram_bytes()) / 1e9
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "model",
                "train baseline",
                "train recomposed",
                "train speedup",
                "(inference speedup)",
                "traffic saved/iter"
            ],
            &rows
        )
    );
    println!("\nDense: the gain shrinks vs inference (backward adds matmul-heavy work)");
    println!("but the barrier-bound row kernels disappear. Sparse: the backward softmax");
    println!("has the forward's §5.1 utilization pathology too, so training gains stay");
    println!("large. Eq. 3 needs only Y — nothing new is stored in either case.");
}
