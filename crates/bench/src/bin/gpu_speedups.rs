//! §5.1: SDF speedups across all three evaluation GPUs.
//! Paper: A100 1.25/1.12/1.57/1.65×; RTX 3090 1.12/1.05/1.32/1.36×;
//! T4 1.22/1.08/1.77/1.87× (BERT / GPT-Neo / BigBird / Longformer).

use resoftmax_bench::{json_requested, print_json, PAPER_SEQ_LEN};
use resoftmax_core::experiments::gpu_speedup_matrix;
use resoftmax_core::format::{pct, render_table, speedup};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = gpu_speedup_matrix(PAPER_SEQ_LEN).expect("launchable");
    if json_requested(&args) {
        print_json(&rows);
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.model.clone(),
                speedup(r.sdf_speedup),
                pct(r.softmax_frac),
            ]
        })
        .collect();
    println!("§5.1: SDF speedup per GPU (L={PAPER_SEQ_LEN}, batch=1)");
    println!("Paper: A100 1.25/1.12/1.57/1.65; 3090 1.12/1.05/1.32/1.36; T4 1.22/1.08/1.77/1.87\n");
    print!(
        "{}",
        render_table(
            &["device", "model", "SDF speedup", "baseline softmax frac"],
            &table
        )
    );
}
