//! Continuous-batching serving simulation: a 64-request Poisson trace on the
//! A100 against GPT-Neo 1.3B, swept over {baseline, recomposed} × {fifo,
//! shortest-remaining}, reporting throughput, TTFT/TBT percentiles, KV-pool
//! occupancy and eviction counts to `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin serve_sim [-- out.json] [--smoke]
//! ```
//!
//! The KV pool is deliberately capped below the trace's aggregate demand so
//! admission control and eviction are exercised, not just counted. Metrics
//! live entirely on the simulated clock, so `--smoke` can assert the rows
//! are bit-identical at 1 and at 4 worker threads (the grid cells run under
//! `parallel_map`, the engine itself is sequential).

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams, SoftmaxStrategy};
use resoftmax_serve::{kv_bytes_per_token, run_serve, Policy, ServeConfig, ServeReport};

const PAPER_CTX: usize = 4096;

fn grid() -> Vec<(SoftmaxStrategy, Policy)> {
    [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed]
        .into_iter()
        .flat_map(|s| {
            [Policy::Fifo, Policy::ShortestRemaining]
                .into_iter()
                .map(move |p| (s, p))
        })
        .collect()
}

fn config(model: &ModelConfig, policy: Policy) -> ServeConfig {
    ServeConfig {
        policy,
        // ~25 worst-case requests' worth of aggregate demand against a
        // 4096-token pool: several requests co-reside, decode growth
        // collides, and the eviction path runs on every cell.
        kv_capacity_bytes: Some(kv_bytes_per_token(model) * 4096),
        ..ServeConfig::default()
    }
}

fn run_grid() -> Vec<ServeReport> {
    let model = ModelConfig::gpt_neo_1_3b();
    let device = DeviceSpec::a100();
    let cells = grid();
    resoftmax_parallel::parallel_map(&cells, |_, &(strategy, policy)| {
        let params = RunParams::new(PAPER_CTX).strategy(strategy);
        run_serve(&model, &device, &params, &config(&model, policy))
            .expect("serve simulation launches")
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let reports = if smoke {
        // Determinism gate: the simulated clock must make the rows
        // bit-identical regardless of host worker threads.
        resoftmax_parallel::set_thread_override(Some(1));
        let serial = run_grid();
        resoftmax_parallel::set_thread_override(Some(4));
        let parallel = run_grid();
        resoftmax_parallel::set_thread_override(None);
        let ser = serde_json::to_string(&serial).expect("rows serialize");
        let par = serde_json::to_string(&parallel).expect("rows serialize");
        assert_eq!(ser, par, "serve rows must be identical at 1 vs 4 threads");
        println!("smoke: rows bit-identical at 1 and 4 worker threads");
        // And the kernel-pricing cache — warm by now from the two legs
        // above — must not perturb a single bit either (serving engines
        // iterate many near-identical decode schedules, the cache's best
        // case).
        let warm = run_grid();
        let wrm = serde_json::to_string(&warm).expect("rows serialize");
        assert_eq!(ser, wrm, "serve rows must be identical with a warm cache");
        let stats = resoftmax_gpusim::sim_cache_stats();
        println!(
            "smoke: warm-cache leg bit-identical (pricing cache: {} entries, \
             {} hits, {} misses, {} event steps saved)",
            stats.kernel_entries, stats.hits, stats.misses, stats.steps_saved
        );
        serial
    } else {
        run_grid()
    };

    for r in &reports {
        assert_eq!(r.completed, 64, "all requests must complete: {r:?}");
        assert!(r.evictions > 0, "pool cap must force evictions: {r:?}");
        assert!(
            r.ttft.p99_s > r.ttft.p50_s && r.tbt.max_s > 0.0,
            "latency percentiles must be non-degenerate: {r:?}"
        );
        println!(
            "{:>10} / {:<18} {:7.1} tok/s  ttft p50/p99 {:6.3}/{:6.3}s  \
             tbt p50/p99 {:6.1}/{:6.1}ms  kv peak {:4.1}%  evictions {:3}  iters {}",
            r.strategy,
            r.policy,
            r.decode_tokens_per_s,
            r.ttft.p50_s,
            r.ttft.p99_s,
            r.tbt.p50_s * 1e3,
            r.tbt.p99_s * 1e3,
            r.kv_peak_occupancy * 100.0,
            r.evictions,
            r.iterations,
        );
    }
    let json = serde_json::to_string_pretty(&reports).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark report");
    println!("report written to {out_path}");
}
