//! Statically analyzes every schedule the evaluation suite builds —
//! fusion legality, buffer dataflow, traffic conservation, numeric
//! certification — and exits nonzero if any schedule has an error-severity
//! finding. The CI gate for the schedule generator.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin analyze [-- --numerics] [-- --trace out.json]
//! ```
//!
//! The grid mirrors `reproduce_all` (see [`resoftmax_bench::analysis_grid`]).
//! Combos are analyzed in parallel via `resoftmax-parallel`; findings are
//! buffered per combo and printed in grid order, so the output is
//! byte-identical at any thread count.
//!
//! `--numerics` additionally summarizes the certified error bounds across
//! the grid (min / median / max relative bound, schedules without a dense
//! certificate) and exits nonzero if any certificate exceeds the
//! certification budget — the CI gate for the error model.
//!
//! `--trace [out.json]` force-enables observability for this process (the
//! equivalent of `RESOFTMAX_TRACE=1 RESOFTMAX_METRICS=1`) and writes the
//! merged chrome-trace of the sweep on exit.

use std::fmt::Write as _;

use resoftmax_analyzer::{Severity, CERT_BUDGET_REL};
use resoftmax_bench::analysis_grid;
use resoftmax_model::{build_schedule, check_schedule, ModelConfig, RunParams};

struct ComboResult {
    kernels: usize,
    errors: usize,
    warnings: usize,
    /// Certified relative error bound, when the schedule has a dense
    /// softmax pipeline to certify (`None` for native block-sparse paths).
    bound_rel: Option<f64>,
    output: String,
}

fn analyze_one(model: &ModelConfig, params: &RunParams) -> ComboResult {
    let kernels = build_schedule(model, params);
    let report = check_schedule(model, params, &kernels);
    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    let bound_rel = report.error_bound.map(|b| b.rel);
    let mut output = String::new();
    if errors + warnings > 0 {
        writeln!(
            output,
            "{} / {} / L={} b={} / {}: {}",
            model.name,
            params.strategy.label(),
            params.seq_len,
            params.batch,
            params.profile.name,
            report.summary()
        )
        .expect("write to String");
        for d in &report.diagnostics {
            if d.severity >= Severity::Warning {
                writeln!(output, "  {}", d.render()).expect("write to String");
            }
        }
    }
    ComboResult {
        kernels: kernels.len(),
        errors,
        warnings,
        bound_rel,
        output,
    }
}

/// Renders the `--numerics` summary and returns the number of schedules
/// whose certificate exceeds the certification budget.
fn numerics_summary(results: &[ComboResult]) -> (String, usize) {
    let mut rels: Vec<f64> = results.iter().filter_map(|r| r.bound_rel).collect();
    rels.sort_by(f64::total_cmp);
    let uncertified = results.len() - rels.len();
    let violations = rels.iter().filter(|&&r| r > CERT_BUDGET_REL).count();
    let line = if rels.is_empty() {
        format!("numerics: no dense certificates in the grid ({uncertified} sparse schedules)")
    } else {
        format!(
            "numerics: {} certified schedules ({} without a dense certificate), \
             rel bound min {:.3e} / median {:.3e} / max {:.3e}, \
             {violations} budget violations (budget {CERT_BUDGET_REL:.1e})",
            rels.len(),
            uncertified,
            rels[0],
            rels[rels.len() / 2],
            rels[rels.len() - 1],
        )
    };
    (line, violations)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let numerics = args.iter().any(|a| a == "--numerics");
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        resoftmax_obs::set_trace_enabled(Some(true));
        resoftmax_obs::set_metrics_enabled(Some(true));
        args.get(i + 1)
            .filter(|p| p.ends_with(".json"))
            .cloned()
            .unwrap_or_else(|| "resoftmax_trace.json".to_owned())
    });

    let grid = analysis_grid();
    let results =
        resoftmax_parallel::parallel_map(&grid, |_, (model, params)| analyze_one(model, params));

    let mut kernels = 0;
    let mut errors = 0;
    let mut warnings = 0;
    for r in &results {
        kernels += r.kernels;
        errors += r.errors;
        warnings += r.warnings;
        print!("{}", r.output);
    }
    println!(
        "analyzed {} schedules ({} kernels): {} errors, {} warnings",
        grid.len(),
        kernels,
        errors,
        warnings
    );
    let mut violations = 0;
    if numerics {
        let (line, v) = numerics_summary(&results);
        println!("{line}");
        violations = v;
    }
    if let Some(path) = trace_path {
        let rec = resoftmax_obs::recorder();
        rec.write(&resoftmax_obs::ChromeTraceSink, &path)
            .expect("writable trace output path");
        eprint!("{}", rec.export(&resoftmax_obs::SummarySink));
        eprintln!("trace: wrote {path}");
    }
    if errors > 0 || violations > 0 {
        std::process::exit(1);
    }
}
