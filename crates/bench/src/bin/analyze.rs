//! Statically analyzes every schedule the evaluation suite builds —
//! fusion legality, buffer dataflow, traffic conservation — and exits
//! nonzero if any schedule has an error-severity finding. The CI gate for
//! the schedule generator.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin analyze [-- --trace out.json]
//! ```
//!
//! The grid mirrors `reproduce_all` (see [`resoftmax_bench::analysis_grid`]).
//! Combos are analyzed in parallel via `resoftmax-parallel`; findings are
//! buffered per combo and printed in grid order, so the output is
//! byte-identical at any thread count.
//!
//! `--trace [out.json]` force-enables observability for this process (the
//! equivalent of `RESOFTMAX_TRACE=1 RESOFTMAX_METRICS=1`) and writes the
//! merged chrome-trace of the sweep on exit.

use std::fmt::Write as _;

use resoftmax_analyzer::Severity;
use resoftmax_bench::analysis_grid;
use resoftmax_model::{build_schedule, check_schedule, ModelConfig, RunParams};

struct ComboResult {
    kernels: usize,
    errors: usize,
    warnings: usize,
    output: String,
}

fn analyze_one(model: &ModelConfig, params: &RunParams) -> ComboResult {
    let kernels = build_schedule(model, params);
    let report = check_schedule(model, params, &kernels);
    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    let mut output = String::new();
    if errors + warnings > 0 {
        writeln!(
            output,
            "{} / {} / L={} b={} / {}: {}",
            model.name,
            params.strategy.label(),
            params.seq_len,
            params.batch,
            params.profile.name,
            report.summary()
        )
        .expect("write to String");
        for d in &report.diagnostics {
            if d.severity >= Severity::Warning {
                writeln!(output, "  {}", d.render()).expect("write to String");
            }
        }
    }
    ComboResult {
        kernels: kernels.len(),
        errors,
        warnings,
        output,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        resoftmax_obs::set_trace_enabled(Some(true));
        resoftmax_obs::set_metrics_enabled(Some(true));
        args.get(i + 1)
            .filter(|p| p.ends_with(".json"))
            .cloned()
            .unwrap_or_else(|| "resoftmax_trace.json".to_owned())
    });

    let grid = analysis_grid();
    let results =
        resoftmax_parallel::parallel_map(&grid, |_, (model, params)| analyze_one(model, params));

    let mut kernels = 0;
    let mut errors = 0;
    let mut warnings = 0;
    for r in &results {
        kernels += r.kernels;
        errors += r.errors;
        warnings += r.warnings;
        print!("{}", r.output);
    }
    println!(
        "analyzed {} schedules ({} kernels): {} errors, {} warnings",
        grid.len(),
        kernels,
        errors,
        warnings
    );
    if let Some(path) = trace_path {
        let rec = resoftmax_obs::recorder();
        rec.write(&resoftmax_obs::ChromeTraceSink, &path)
            .expect("writable trace output path");
        eprint!("{}", rec.export(&resoftmax_obs::SummarySink));
        eprintln!("trace: wrote {path}");
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
