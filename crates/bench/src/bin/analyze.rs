//! Statically analyzes every schedule the evaluation suite builds —
//! fusion legality, buffer dataflow, traffic conservation — and exits
//! nonzero if any schedule has an error-severity finding. The CI gate for
//! the schedule generator.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin analyze
//! ```
//!
//! The grid mirrors `reproduce_all` (see [`resoftmax_bench::analysis_grid`]).
//! Combos are analyzed in parallel via `resoftmax-parallel`; findings are
//! buffered per combo and printed in grid order, so the output is
//! byte-identical at any thread count.

use std::fmt::Write as _;

use resoftmax_analyzer::Severity;
use resoftmax_bench::analysis_grid;
use resoftmax_model::{build_schedule, check_schedule, ModelConfig, RunParams};

struct ComboResult {
    kernels: usize,
    errors: usize,
    warnings: usize,
    output: String,
}

fn analyze_one(model: &ModelConfig, params: &RunParams) -> ComboResult {
    let kernels = build_schedule(model, params);
    let report = check_schedule(model, params, &kernels);
    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    let mut output = String::new();
    if errors + warnings > 0 {
        writeln!(
            output,
            "{} / {} / L={} b={} / {}: {}",
            model.name,
            params.strategy.label(),
            params.seq_len,
            params.batch,
            params.profile.name,
            report.summary()
        )
        .expect("write to String");
        for d in &report.diagnostics {
            if d.severity >= Severity::Warning {
                writeln!(output, "  {}", d.render()).expect("write to String");
            }
        }
    }
    ComboResult {
        kernels: kernels.len(),
        errors,
        warnings,
        output,
    }
}

fn main() {
    let grid = analysis_grid();
    let results =
        resoftmax_parallel::parallel_map(&grid, |_, (model, params)| analyze_one(model, params));

    let mut kernels = 0;
    let mut errors = 0;
    let mut warnings = 0;
    for r in &results {
        kernels += r.kernels;
        errors += r.errors;
        warnings += r.warnings;
        print!("{}", r.output);
    }
    println!(
        "analyzed {} schedules ({} kernels): {} errors, {} warnings",
        grid.len(),
        kernels,
        errors,
        warnings
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
