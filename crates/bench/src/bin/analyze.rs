//! Statically analyzes every schedule the evaluation suite builds —
//! fusion legality, buffer dataflow, traffic conservation — and exits
//! nonzero if any schedule has an error-severity finding. The CI gate for
//! the schedule generator.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin analyze
//! ```
//!
//! The grid mirrors `reproduce_all`: the evaluation models (plus the two
//! extra presets) × the four softmax strategies × the Fig. 9 sequence
//! lengths, the Fig. 7 library line-up at the paper's default length, and
//! the Fig. 9 batch sweep.

use resoftmax_analyzer::Severity;
use resoftmax_bench::PAPER_SEQ_LEN;
use resoftmax_model::{
    build_schedule, check_schedule, LibraryProfile, ModelConfig, RunParams, SoftmaxStrategy,
};

const SEQ_LENS: [usize; 5] = [512, 1024, 2048, 4096, 8192];
const BATCHES: [usize; 4] = [1, 2, 4, 8];

const STRATEGIES: [SoftmaxStrategy; 4] = [
    SoftmaxStrategy::Baseline,
    SoftmaxStrategy::Decomposed,
    SoftmaxStrategy::Recomposed,
    SoftmaxStrategy::OnlineFused,
];

fn models() -> Vec<ModelConfig> {
    let mut m = ModelConfig::all_eval_models();
    m.push(ModelConfig::bert_base());
    m.push(ModelConfig::sparse_transformer());
    m
}

struct Tally {
    combos: usize,
    kernels: usize,
    errors: usize,
    warnings: usize,
}

fn analyze_one(model: &ModelConfig, params: &RunParams, tally: &mut Tally) {
    let kernels = build_schedule(model, params);
    let report = check_schedule(model, params, &kernels);
    tally.combos += 1;
    tally.kernels += kernels.len();
    tally.errors += report.count(Severity::Error);
    tally.warnings += report.count(Severity::Warning);
    if report.count(Severity::Error) + report.count(Severity::Warning) > 0 {
        println!(
            "{} / {} / L={} b={} / {}: {}",
            model.name,
            params.strategy.label(),
            params.seq_len,
            params.batch,
            params.profile.name,
            report.summary()
        );
        for d in &report.diagnostics {
            if d.severity >= Severity::Warning {
                println!("  {}", d.render());
            }
        }
    }
}

fn main() {
    let mut tally = Tally {
        combos: 0,
        kernels: 0,
        errors: 0,
        warnings: 0,
    };

    // Strategy × sequence-length grid (Fig. 8/9), paper-baseline library.
    for model in &models() {
        for &strategy in &STRATEGIES {
            for &seq_len in &SEQ_LENS {
                let params = RunParams::new(seq_len).strategy(strategy);
                analyze_one(model, &params, &mut tally);
            }
        }
    }

    // Library line-up (Fig. 7) at the paper's default length.
    for model in &models() {
        for profile in LibraryProfile::fig7_lineup() {
            for &strategy in &STRATEGIES {
                let params = RunParams::new(PAPER_SEQ_LEN)
                    .strategy(strategy)
                    .profile(profile.clone());
                analyze_one(model, &params, &mut tally);
            }
        }
    }

    // Batch sweep (Fig. 9 right).
    for model in &models() {
        for &batch in &BATCHES {
            for &strategy in &STRATEGIES {
                let params = RunParams::new(PAPER_SEQ_LEN)
                    .strategy(strategy)
                    .batch(batch);
                analyze_one(model, &params, &mut tally);
            }
        }
    }

    println!(
        "analyzed {} schedules ({} kernels): {} errors, {} warnings",
        tally.combos, tally.kernels, tally.errors, tally.warnings
    );
    if tally.errors > 0 {
        std::process::exit(1);
    }
}
