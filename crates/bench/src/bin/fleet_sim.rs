//! Fleet serving simulation: Poisson traffic over a modeled multi-GPU
//! cluster (8 replicas by default), swept over arrival rate to locate the
//! TTFT SLO knee, plus router-policy, heterogeneous-fleet, tight-memory,
//! fault-scenario, and prefill/decode-disaggregation rows (unified vs
//! disaggregated at the same arrival rate, swept over NVLink / PCIe /
//! 100GbE handoff links). Writes `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin fleet_sim [-- out.json] [--smoke]
//! ```
//!
//! The *knee* is the first swept arrival rate whose TTFT p99 exceeds the SLO
//! (1 simulated second): below it admission keeps up, above it queues grow
//! without bound and tail latency explodes. All metrics live on the
//! simulated clock, so `--smoke` asserts the rows are bit-identical at 1 and
//! 4 host worker threads and across cold/warm kernel-pricing cache runs.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams, SoftmaxStrategy};
use resoftmax_serve::{
    kv_bytes_per_token, FleetBuilder, FleetReport, LinkSpec, RouterPolicy, ServeConfig,
};
use serde::Serialize;

const PAPER_CTX: usize = 4096;
/// TTFT service-level objective, simulated seconds.
const SLO_TTFT_P99_S: f64 = 1.0;

#[derive(Debug, Clone, Serialize)]
struct FleetRow {
    label: String,
    arrival_rate_hz: f64,
    meets_slo: bool,
    report: FleetReport,
}

#[derive(Debug, Serialize)]
struct FleetBench {
    slo_ttft_p99_s: f64,
    /// First swept arrival rate whose TTFT p99 exceeds the SLO (requests per
    /// simulated second), or the top of the sweep when none does.
    knee_rate_hz: f64,
    rows: Vec<FleetRow>,
}

struct Scale {
    replicas: usize,
    sweep_requests: usize,
    headline_requests: usize,
    sweep_rates: Vec<f64>,
}

impl Scale {
    fn full() -> Self {
        Scale {
            replicas: 8,
            sweep_requests: 2000,
            headline_requests: 10_000,
            // Geometric-ish ladder bracketing the 8-replica capacity:
            // ~516 decode tok/s per replica at max_batch 8 and a mean
            // decode of 72 tokens puts saturation near 50 req/s, and the
            // 1 s TTFT p99 budget is spent on queueing well before that.
            sweep_rates: vec![16.0, 24.0, 36.0, 48.0, 72.0],
        }
    }

    fn smoke() -> Self {
        Scale {
            replicas: 3,
            sweep_requests: 48,
            headline_requests: 96,
            sweep_rates: vec![32.0, 128.0],
        }
    }
}

fn workload(requests: usize, rate_hz: f64) -> ServeConfig {
    ServeConfig {
        requests,
        arrival_rate_hz: rate_hz,
        // The fleet headline runs hundreds of thousands of engine
        // iterations; the termination backstop must sit far above them.
        max_iterations: 100_000_000,
        ..ServeConfig::default()
    }
}

fn run_fleet(label: &str, rate_hz: f64, build: impl FnOnce() -> FleetBuilder<'static>) -> FleetRow {
    let report = build()
        .build()
        .expect("fleet configuration validates")
        .run()
        .expect("fleet simulation completes");
    assert_eq!(
        report.completed, report.submitted,
        "{label}: every submitted request must complete"
    );
    FleetRow {
        label: label.to_owned(),
        arrival_rate_hz: rate_hz,
        meets_slo: report.ttft.p99_s <= SLO_TTFT_P99_S,
        report,
    }
}

fn homogeneous(replicas: usize, requests: usize, rate_hz: f64) -> FleetBuilder<'static> {
    FleetBuilder::new()
        .model(ModelConfig::gpt_neo_1_3b())
        .params(RunParams::new(PAPER_CTX).strategy(SoftmaxStrategy::Recomposed))
        .replicas(replicas, &DeviceSpec::a100())
        .router(RouterPolicy::LeastLoaded)
        .link(LinkSpec::nvlink())
        .workload(workload(requests, rate_hz))
}

/// The same hardware budget as [`homogeneous`], split into dedicated
/// prefill and decode replicas (a quarter prefill, rounded up to one) with
/// finished-prefill KV handed off over `link`.
fn disaggregated(
    replicas: usize,
    requests: usize,
    rate_hz: f64,
    link: LinkSpec,
) -> FleetBuilder<'static> {
    let prefill = (replicas / 4).max(1);
    FleetBuilder::new()
        .model(ModelConfig::gpt_neo_1_3b())
        .params(RunParams::new(PAPER_CTX).strategy(SoftmaxStrategy::Recomposed))
        .prefill_replicas(prefill, &DeviceSpec::a100())
        .decode_replicas(replicas - prefill, &DeviceSpec::a100())
        .router(RouterPolicy::LeastLoaded)
        .link(link)
        .workload(workload(requests, rate_hz))
}

fn run_bench(scale: &Scale) -> FleetBench {
    let n = scale.replicas;

    // Stage 1: arrival-rate sweep to the SLO knee (cells are independent;
    // the simulated clock keeps them bit-identical under any threading).
    let sweep: Vec<FleetRow> = resoftmax_parallel::parallel_map(&scale.sweep_rates, |_, &rate| {
        run_fleet(&format!("sweep/{rate}hz"), rate, || {
            homogeneous(n, scale.sweep_requests, rate)
        })
    });
    let knee_rate_hz = sweep
        .iter()
        .find(|r| !r.meets_slo)
        .or_else(|| sweep.last())
        .expect("sweep is nonempty")
        .arrival_rate_hz;

    // Stage 2: scenario rows at fixed rates (again independent).
    let mid_rate = scale.sweep_rates[scale.sweep_rates.len() / 2];
    let scenarios: Vec<Box<dyn Fn() -> FleetRow + Sync + '_>> = vec![
        // Headline: 10k+ requests across the full fleet at the knee.
        Box::new(|| {
            run_fleet("headline/knee", knee_rate_hz, || {
                homogeneous(n, scale.headline_requests, knee_rate_hz)
            })
        }),
        // Router-policy comparison at the mid sweep rate.
        Box::new(|| {
            run_fleet("router/round-robin", mid_rate, || {
                homogeneous(n, scale.sweep_requests, mid_rate).router(RouterPolicy::RoundRobin)
            })
        }),
        Box::new(|| {
            run_fleet("router/cache-affinity", mid_rate, || {
                homogeneous(n, scale.sweep_requests, mid_rate)
                    .router(RouterPolicy::CacheAffinity)
                    .workload(ServeConfig {
                        sessions: 64,
                        ..workload(scale.sweep_requests, mid_rate)
                    })
            })
        }),
        // Heterogeneous fleet: a quarter of the replicas are T4s behind the
        // same router (least-loaded absorbs the speed difference).
        Box::new(|| {
            run_fleet("hetero/a100+t4", mid_rate, || {
                FleetBuilder::new()
                    .model(ModelConfig::gpt_neo_1_3b())
                    .params(RunParams::new(PAPER_CTX).strategy(SoftmaxStrategy::Recomposed))
                    .replicas(n - n.div_ceil(4), &DeviceSpec::a100())
                    .replicas(n.div_ceil(4), &DeviceSpec::t4())
                    .router(RouterPolicy::LeastLoaded)
                    .link(LinkSpec::pcie_gen4())
                    .workload(workload(scale.sweep_requests, mid_rate))
            })
        }),
        // Tight KV memory: per-replica pools capped so decode growth
        // collides and eviction spill-over migrates KV between replicas.
        Box::new(|| {
            run_fleet("tight-kv/evict-migrate", mid_rate, || {
                let model = ModelConfig::gpt_neo_1_3b();
                homogeneous(n, scale.sweep_requests, mid_rate).workload(ServeConfig {
                    kv_capacity_bytes: Some(kv_bytes_per_token(&model) * 2048),
                    ..workload(scale.sweep_requests, mid_rate)
                })
            })
        }),
        // Fault scenario: one replica drains gracefully (KV migrates), one
        // fails abruptly (KV lost) while traffic keeps arriving.
        Box::new(|| {
            run_fleet("faults/drain+fail", mid_rate, || {
                homogeneous(n, scale.sweep_requests, mid_rate)
                    .drain_at(0, 1.0)
                    .fail_at(1, 2.0)
            })
        }),
        // Disaggregation: the same hardware split into dedicated prefill
        // and decode replicas, against a colocated reference at the same
        // arrival rate, swept over the handoff interconnect — the link is
        // the knob that decides whether the phase split pays.
        Box::new(|| {
            run_fleet("disagg/unified-ref", mid_rate, || {
                homogeneous(n, scale.sweep_requests, mid_rate)
            })
        }),
        Box::new(|| {
            run_fleet("disagg/nvlink", mid_rate, || {
                disaggregated(n, scale.sweep_requests, mid_rate, LinkSpec::nvlink())
            })
        }),
        Box::new(|| {
            run_fleet("disagg/pcie-gen4", mid_rate, || {
                disaggregated(n, scale.sweep_requests, mid_rate, LinkSpec::pcie_gen4())
            })
        }),
        Box::new(|| {
            run_fleet("disagg/100gbe", mid_rate, || {
                disaggregated(n, scale.sweep_requests, mid_rate, LinkSpec::ethernet_100g())
            })
        }),
    ];
    let mut rows = sweep;
    rows.extend(resoftmax_parallel::parallel_map(&scenarios, |_, f| f()));

    FleetBench {
        slo_ttft_p99_s: SLO_TTFT_P99_S,
        knee_rate_hz,
        rows,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_owned());

    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    let bench = if smoke {
        // Determinism gate: the simulated clock must make every row
        // bit-identical regardless of host worker threads...
        resoftmax_parallel::set_thread_override(Some(1));
        let serial = run_bench(&scale);
        resoftmax_parallel::set_thread_override(Some(4));
        let parallel = run_bench(&scale);
        resoftmax_parallel::set_thread_override(None);
        let ser = serde_json::to_string(&serial).expect("rows serialize");
        let par = serde_json::to_string(&parallel).expect("rows serialize");
        assert_eq!(ser, par, "fleet rows must be identical at 1 vs 4 threads");
        println!("smoke: rows bit-identical at 1 and 4 worker threads");
        // ...and the kernel-pricing cache (cold for the first leg, warm by
        // now) must not perturb a single bit either.
        let warm = run_bench(&scale);
        let wrm = serde_json::to_string(&warm).expect("rows serialize");
        assert_eq!(ser, wrm, "fleet rows must be identical with a warm cache");
        let stats = resoftmax_gpusim::sim_cache_stats();
        println!(
            "smoke: warm-cache leg bit-identical (pricing cache: {} entries, \
             {} hits, {} misses)",
            stats.kernel_entries, stats.hits, stats.misses
        );
        serial
    } else {
        run_bench(&scale)
    };

    for r in &bench.rows {
        let rep = &r.report;
        println!(
            "{:<22} {:6.1} req/s  {:>6} reqs  {:8.1} tok/s  ttft p50/p99 \
             {:6.3}/{:6.3}s  tbt p50 {:5.1}ms  evict {:4}  migr {:4} \
             ({:5.1} MB)  hoff {:5} ({:7.1} MB)  slo {}",
            r.label,
            r.arrival_rate_hz,
            rep.completed,
            rep.decode_tokens_per_s,
            rep.ttft.p50_s,
            rep.ttft.p99_s,
            rep.tbt.p50_s * 1e3,
            rep.evictions,
            rep.migrations,
            rep.kv_migrated_bytes as f64 / 1e6,
            rep.handoffs,
            rep.kv_handoff_bytes as f64 / 1e6,
            if r.meets_slo { "ok" } else { "MISS" },
        );
    }
    println!(
        "SLO knee: {:.1} req/s at TTFT p99 <= {:.1}s",
        bench.knee_rate_hz, bench.slo_ttft_p99_s
    );
    // Unified-vs-disaggregated comparison at the shared arrival rate: TTFT
    // moves with the dedicated prefill pool, TBT absorbs the per-request
    // handoff, and the link preset decides how much.
    if let Some(unified) = bench.rows.iter().find(|r| r.label == "disagg/unified-ref") {
        let pct = |new: f64, old: f64| (new / old - 1.0) * 100.0;
        println!(
            "\nunified vs disaggregated at {:.1} req/s:\n  {:<22} ttft p50/p99 \
             {:.3}/{:.3}s  tbt p50 {:.1}ms  (colocated reference)",
            unified.arrival_rate_hz,
            unified.label,
            unified.report.ttft.p50_s,
            unified.report.ttft.p99_s,
            unified.report.tbt.p50_s * 1e3,
        );
        for r in bench
            .rows
            .iter()
            .filter(|r| r.label.starts_with("disagg/") && r.label != "disagg/unified-ref")
        {
            println!(
                "  {:<22} ttft p50/p99 {:.3}/{:.3}s ({:+.1}% / {:+.1}%)  tbt p50 \
                 {:.1}ms ({:+.1}%)  handoff {:.3}s wire time",
                r.label,
                r.report.ttft.p50_s,
                r.report.ttft.p99_s,
                pct(r.report.ttft.p50_s, unified.report.ttft.p50_s),
                pct(r.report.ttft.p99_s, unified.report.ttft.p99_s),
                r.report.tbt.p50_s * 1e3,
                pct(r.report.tbt.p50_s, unified.report.tbt.p50_s),
                r.report.kv_handoff_time_s,
            );
        }
    }
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark report");
    println!("report written to {out_path}");
}
