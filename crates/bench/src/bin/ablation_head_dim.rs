//! Ablation: per-head hidden size `D_head`.
//!
//! GPT-Neo (d_head 128) gains less from recomposition than BERT (d_head 64):
//! a larger head raises the MatMuls' arithmetic intensity (2·d FLOPs per
//! attention-matrix element), shrinking the softmax share. This sweep holds
//! `D_m = 1024` fixed and varies the head split.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::format::{pct, render_table, speedup};
use resoftmax_model::{run_inference, AttentionKind, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    println!(
        "ABLATION: head size at fixed D_m=1024 on {} (L={PAPER_SEQ_LEN})\n",
        device.name
    );
    let mut rows = Vec::new();
    for heads in [32usize, 16, 8, 4] {
        let d_head = 1024 / heads;
        let model = ModelConfig {
            name: format!("dense-{heads}h"),
            layers: 24,
            d_model: 1024,
            heads,
            d_ff: 4096,
            attention: AttentionKind::Dense { causal: false },
        };
        let base =
            run_inference(&model, &RunParams::new(PAPER_SEQ_LEN), device.clone()).expect("ok");
        let sdf = run_inference(
            &model,
            &RunParams::new(PAPER_SEQ_LEN).strategy(SoftmaxStrategy::Recomposed),
            device.clone(),
        )
        .expect("ok");
        rows.push(vec![
            format!("{d_head}"),
            format!("{heads}"),
            format!("{:.2} ms", base.total_time_s() * 1e3),
            pct(base.softmax_time_fraction()),
            speedup(base.total_time_s() / sdf.total_time_s()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["D_head", "heads", "baseline", "softmax frac", "SDF speedup"],
            &rows
        )
    );
    println!("\nLarger heads make the attention MatMuls more compute-intense per");
    println!("attention-matrix element, diluting the softmax share — the mechanism");
    println!("behind GPT-Neo's smaller gains (d_head = 128).");
}
