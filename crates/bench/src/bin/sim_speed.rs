//! The `sim_speed` experiment: how much simulation work the cross-run
//! kernel-pricing cache removes from the `tune --smoke` grid.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin sim_speed [-- --out BENCH_simcache.json]
//! ```
//!
//! Three legs replay the identical smoke grid with a fresh in-memory tuner
//! each time:
//!
//! 1. **cache off** — every kernel priced by fresh event-driven simulation;
//! 2. **cache on, cold** — first encounter of each fingerprint simulates
//!    fresh and memoizes it;
//! 3. **cache on, warm** — every kernel answers from the cache in O(lookup).
//!
//! The legs must produce bit-identical `BenchRow`s (the cache's bit-identity
//! contract), and the warm leg must run at least 10× fewer fresh event
//! steps than the cache-off leg — both asserted here, so CI fails if the
//! cache stops being transparent or stops saving work. The step counts,
//! wall times, and cache statistics go to `BENCH_simcache.json`.

use std::time::Instant;

use resoftmax_bench::{run_grid, write_report, BenchArgs, BenchRow};
use resoftmax_gpusim::{clear_sim_cache, set_sim_cache_enabled, sim_cache_stats, DeviceSpec};
use resoftmax_tune::{SearchMode, SearchSpace, Tuner};

/// Replays the smoke grid on a fresh in-memory tuner, returning the report
/// rows, the fresh event steps the leg ran, and its wall time in seconds.
fn leg(device: &DeviceSpec) -> (Vec<BenchRow>, u64, f64) {
    let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
    let steps0 = resoftmax_obs::counter("sim.event_steps").get();
    let start = Instant::now();
    let (rows, _) = run_grid(&tuner, device, true);
    let wall_s = start.elapsed().as_secs_f64();
    let steps = resoftmax_obs::counter("sim.event_steps").get() - steps0;
    (rows, steps, wall_s)
}

fn main() {
    let args = BenchArgs::parse();
    let out = args.out_or("BENCH_simcache.json");
    let device = resoftmax_bench::device_from_args(&args.rest);
    // `sim.event_steps` (and the `sim.cache.*` mirrors) are behind the
    // metrics switch; this binary exists to measure them.
    resoftmax_obs::set_metrics_enabled(Some(true));

    set_sim_cache_enabled(Some(false));
    let (rows_off, steps_off, wall_off) = leg(&device);

    set_sim_cache_enabled(Some(true));
    clear_sim_cache();
    let (rows_cold, steps_cold, wall_cold) = leg(&device);
    let (rows_warm, steps_warm, wall_warm) = leg(&device);
    set_sim_cache_enabled(None);

    // Bit-identity: the cache must never change a single reported number.
    let json_off = serde_json::to_string(&rows_off).expect("rows serialize");
    for (rows, label) in [(&rows_cold, "cold"), (&rows_warm, "warm")] {
        assert_eq!(
            json_off,
            serde_json::to_string(rows).expect("rows serialize"),
            "{label}-cache rows diverge from cache-off rows"
        );
    }
    println!("rows bit-identical across cache-off, cold, and warm legs");

    // The acceptance bar: a warm cache prices the whole grid with at least
    // 10× fewer fresh event steps than simulating everything.
    assert!(steps_off > 0, "smoke grid ran no event-driven simulation");
    assert!(
        steps_warm.saturating_mul(10) <= steps_off,
        "warm cache saved too little: {steps_warm} steps vs {steps_off} without the cache"
    );

    let stats = sim_cache_stats();
    println!(
        "event steps: {steps_off} off / {steps_cold} cold / {steps_warm} warm \
         ({:.1}x fewer warm)",
        steps_off as f64 / (steps_warm.max(1)) as f64
    );
    println!("wall: {wall_off:.2}s off / {wall_cold:.2}s cold / {wall_warm:.2}s warm");
    println!(
        "cache: {} kernel entries, {} hits, {} misses, {} steps saved",
        stats.kernel_entries, stats.hits, stats.misses, stats.steps_saved
    );

    let config = format!("smoke-grid/{}", device.name);
    let mut rows = vec![
        BenchRow::new(
            "sim_speed",
            &config,
            "event_steps_cache_off",
            steps_off as f64,
        ),
        BenchRow::new("sim_speed", &config, "event_steps_cold", steps_cold as f64),
        BenchRow::new("sim_speed", &config, "event_steps_warm", steps_warm as f64),
        BenchRow::new(
            "sim_speed",
            &config,
            "step_reduction_warm",
            steps_off as f64 / (steps_warm.max(1)) as f64,
        ),
        BenchRow::new("sim_speed", &config, "wall_s_cache_off", wall_off),
        BenchRow::new("sim_speed", &config, "wall_s_cold", wall_cold),
        BenchRow::new("sim_speed", &config, "wall_s_warm", wall_warm),
    ];
    rows.extend([
        BenchRow::new("sim_speed", &config, "cache_hits", stats.hits as f64),
        BenchRow::new("sim_speed", &config, "cache_misses", stats.misses as f64),
        BenchRow::new(
            "sim_speed",
            &config,
            "cache_steps_saved",
            stats.steps_saved as f64,
        ),
    ]);
    write_report(&out, &rows);
    resoftmax_obs::set_metrics_enabled(None);
}
