//! Extension experiment: serving a long-document corpus — max-length padding
//! vs length-bucketed batching, with and without recomposition.
//!
//! §2.2 motivates long `L` by document coverage; in *serving*, padding every
//! document to the model maximum wastes quadratic attention work on the
//! short ones. Length bucketing recovers that waste, and recomposition
//! stacks on top (its speedup grows with the bucket length, Fig. 9(a)).

use resoftmax_bench::device_from_args;
use resoftmax_core::format::render_table;
use resoftmax_model::{
    run_inference, ModelConfig, RunParams, SoftmaxStrategy, Workload, WorkloadConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let corpus = Workload::generate(&WorkloadConfig::default());
    let model = ModelConfig::bert_large();
    let batch = 8usize;
    let buckets = [512usize, 1024, 2048, 4096, 8192];
    let max_len = *buckets.last().expect("non-empty");

    println!(
        "EXTENSION: serving {} documents on {} ({}, batch {batch})\n",
        corpus.len(),
        device.name,
        model.name
    );

    let corpus_time = |plan: &[(usize, usize)], strategy: SoftmaxStrategy| -> f64 {
        plan.iter()
            .map(|&(l, iters)| {
                let r = run_inference(
                    &model,
                    &RunParams::new(l).batch(batch).strategy(strategy),
                    device.clone(),
                )
                .expect("launchable");
                r.total_time_s() * iters as f64
            })
            .sum()
    };

    let flat_plan = vec![(max_len, corpus.iterations(batch))];
    let bucket_plan = corpus.bucketed_iterations(&buckets, batch);

    let mut rows = Vec::new();
    let mut flat_base = 0.0;
    for (plan_name, plan) in [("pad to max", &flat_plan), ("bucketed", &bucket_plan)] {
        for strategy in [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed] {
            let t = corpus_time(plan, strategy);
            if flat_base == 0.0 {
                flat_base = t;
            }
            rows.push(vec![
                plan_name.to_owned(),
                strategy.label().to_owned(),
                format!("{t:.1} s"),
                format!("{:.2}x", flat_base / t),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &["batching", "softmax", "corpus time", "vs padded baseline"],
            &rows
        )
    );

    println!("\nbucket plan: {bucket_plan:?} (length, iterations)");
    println!("Bucketing removes quadratic padding waste; recomposition compounds on");
    println!("top — largest on the big buckets where the softmax share peaks.");
}
