//! Fig. 8: (a) execution time and (b) off-chip memory accesses per iteration
//! with softmax decomposition (SD) and decomposition+fusion (SDF) applied.
//! Paper (A100, L=4096, batch 1): SD 0.94× / 0.99× / 1.44× / 1.49×;
//! SDF 1.25× / 1.12× / 1.57× / 1.65×; softmax off-chip traffic reduced
//! 1.58–2.51×; average latency −28% and off-chip access energy −29%.

use resoftmax_bench::{
    device_from_args, json_requested, print_json, write_trace_if_enabled, PAPER_SEQ_LEN,
};
use resoftmax_core::experiments::fig8_sd_sdf;
use resoftmax_core::format::{gb, ms, pct, render_table, speedup};
use resoftmax_gpusim::KernelCategory;
use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    let rows = fig8_sd_sdf(&device, PAPER_SEQ_LEN, 1).expect("launchable");
    if json_requested(&args) {
        print_json(&rows);
        write_trace_if_enabled();
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                ms(r.baseline_ms),
                gb(r.baseline_gb * 1e9),
                speedup(r.sd_speedup),
                speedup(r.sdf_speedup),
                format!("{:.2}x", r.sd_traffic),
                format!("{:.2}x", r.sdf_traffic),
                format!("{:.2}x", r.sdf_energy),
                format!("{:.2}x less", 1.0 / r.softmax_traffic_ratio),
            ]
        })
        .collect();

    println!(
        "FIG 8: SD / SDF vs baseline on {} (L={PAPER_SEQ_LEN}, batch=1)",
        device.name
    );
    println!("Paper: SD 0.94/0.99/1.44/1.49x; SDF 1.25/1.12/1.57/1.65x\n");
    print!(
        "{}",
        render_table(
            &[
                "model",
                "baseline",
                "base traffic",
                "SD speedup",
                "SDF speedup",
                "SD traffic",
                "SDF traffic",
                "SDF energy",
                "softmax traffic cut"
            ],
            &table
        )
    );

    let avg_latency: f64 =
        rows.iter().map(|r| 1.0 - 1.0 / r.sdf_speedup).sum::<f64>() / rows.len() as f64;
    let avg_energy: f64 = rows.iter().map(|r| 1.0 - r.sdf_energy).sum::<f64>() / rows.len() as f64;
    println!(
        "\nAverages: per-inference latency -{:.0}%, off-chip access energy -{:.0}%",
        avg_latency * 100.0,
        avg_energy * 100.0
    );
    println!("Paper abstract: latency -28%, off-chip access energy -29%");

    // Fig. 8(a)'s stacked bars: the per-category composition per strategy.
    // When metrics are on, the sweep doubles as a consistency check: the
    // runs below execute serially, so the `sim.dram_bytes.*` counters must
    // equal the run-ordered sum of each report's breakdown bit-for-bit.
    let reconcile = resoftmax_obs::metrics_enabled();
    if reconcile {
        resoftmax_obs::reset_metrics();
    }
    let mut expected: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    println!("\nPer-strategy composition (Fig. 8(a) stacks):\n");
    let mut stack_rows = Vec::new();
    for model in ModelConfig::all_eval_models() {
        for strategy in [
            SoftmaxStrategy::Baseline,
            SoftmaxStrategy::Decomposed,
            SoftmaxStrategy::Recomposed,
        ] {
            let r = run_inference(
                &model,
                &RunParams::new(PAPER_SEQ_LEN).strategy(strategy),
                device.clone(),
            )
            .expect("launchable");
            let b = r.breakdown();
            if reconcile {
                for c in &b.categories {
                    *expected.entry(c.category.label().to_owned()).or_insert(0.0) += c.dram_bytes();
                }
            }
            let total = b.total_time_s();
            let frac = |cats: &[KernelCategory]| -> String {
                pct(cats.iter().map(|&c| b.time_of(c)).sum::<f64>() / total)
            };
            stack_rows.push(vec![
                model.name.clone(),
                strategy.label().to_owned(),
                ms(total * 1e3),
                frac(&[KernelCategory::MatMulQk, KernelCategory::MatMulPv]),
                pct(b.softmax_time_s() / total),
                frac(&[KernelCategory::Fc]),
                frac(&[KernelCategory::FeedForward]),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "model",
                "strategy",
                "total",
                "MatMul(SDA)",
                "Softmax",
                "FC",
                "FeedForward"
            ],
            &stack_rows
        )
    );

    if reconcile {
        let snap = resoftmax_obs::metrics_snapshot();
        for (label, bytes) in &expected {
            let counter = snap.value(&format!("sim.dram_bytes.{label}"));
            assert!(
                counter == *bytes,
                "counter sim.dram_bytes.{label} = {counter} != breakdown sum {bytes}"
            );
        }
        println!(
            "\nobservability: {} per-category DRAM counters reconcile with RunReport::breakdown exactly",
            expected.len()
        );
    }
    write_trace_if_enabled();
}
