//! Full design-space sweep exported as CSV (default) or JSON (`--json`):
//! every model × strategy × L × batch on the chosen device(s) — the raw
//! material for regenerating any figure externally.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin grid_sweep > sweep.csv
//! cargo run --release -p resoftmax-bench --bin grid_sweep -- t4 --json
//! ```

use resoftmax_bench::{json_requested, print_json};
use resoftmax_core::experiments::full_grid_sweep;
use resoftmax_core::format::render_csv;
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::SoftmaxStrategy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices: Vec<DeviceSpec> = if args.iter().any(|a| a == "all") {
        DeviceSpec::all_presets()
    } else {
        vec![resoftmax_bench::device_from_args(&args)]
    };
    let points = full_grid_sweep(
        &devices,
        &[512, 1024, 2048, 4096, 8192],
        &[1, 2, 4, 8],
        &[
            SoftmaxStrategy::Baseline,
            SoftmaxStrategy::Decomposed,
            SoftmaxStrategy::Recomposed,
            SoftmaxStrategy::OnlineFused,
        ],
    )
    .expect("launchable");

    if json_requested(&args) {
        print_json(&points);
        return;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.device.clone(),
                p.model.clone(),
                p.strategy.clone(),
                p.seq_len.to_string(),
                p.batch.to_string(),
                format!("{:.4}", p.total_ms),
                format!("{:.4}", p.dram_gb),
                format!("{:.6}", p.energy_j),
                format!("{:.4}", p.softmax_frac),
            ]
        })
        .collect();
    print!(
        "{}",
        render_csv(
            &[
                "device",
                "model",
                "strategy",
                "seq_len",
                "batch",
                "total_ms",
                "dram_gb",
                "energy_j",
                "softmax_frac"
            ],
            &rows
        )
    );
}
