//! Full design-space sweep exported as CSV (default) or JSON (`--json`):
//! every model × strategy × L × batch on the chosen device(s) — the raw
//! material for regenerating any figure externally.
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin grid_sweep > sweep.csv
//! cargo run --release -p resoftmax-bench --bin grid_sweep -- t4 --json
//! cargo run --release -p resoftmax-bench --bin grid_sweep -- --smoke --out rows.json
//! ```
//!
//! `--smoke` shrinks the sweep for CI; `--out <path>` additionally writes
//! the points in the shared `{bin, config, metric, value}` row schema.

use resoftmax_bench::{json_requested, print_json, write_report, BenchArgs, BenchRow};
use resoftmax_core::experiments::full_grid_sweep;
use resoftmax_core::format::render_csv;
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::SoftmaxStrategy;

fn main() {
    let args = BenchArgs::parse();
    let devices: Vec<DeviceSpec> = if args.rest.iter().any(|a| a == "all") {
        DeviceSpec::all_presets()
    } else {
        vec![resoftmax_bench::device_from_args(&args.rest)]
    };
    let (seq_lens, batches): (&[usize], &[usize]) = if args.smoke {
        (&[512, 1024], &[1, 2])
    } else {
        (&[512, 1024, 2048, 4096, 8192], &[1, 2, 4, 8])
    };
    let points = full_grid_sweep(
        &devices,
        seq_lens,
        batches,
        &[
            SoftmaxStrategy::Baseline,
            SoftmaxStrategy::Decomposed,
            SoftmaxStrategy::Recomposed,
            SoftmaxStrategy::OnlineFused,
        ],
    )
    .expect("launchable");

    if let Some(out) = &args.out {
        let rows: Vec<BenchRow> = points
            .iter()
            .flat_map(|p| {
                let config = format!(
                    "{}/{}/{}/L{}/b{}",
                    p.device, p.model, p.strategy, p.seq_len, p.batch
                );
                [
                    BenchRow::new("grid_sweep", &config, "total_ms", p.total_ms),
                    BenchRow::new("grid_sweep", &config, "dram_gb", p.dram_gb),
                    BenchRow::new("grid_sweep", &config, "energy_j", p.energy_j),
                    BenchRow::new("grid_sweep", &config, "softmax_frac", p.softmax_frac),
                ]
            })
            .collect();
        write_report(out, &rows);
        return;
    }

    if json_requested(&args.rest) {
        print_json(&points);
        return;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.device.clone(),
                p.model.clone(),
                p.strategy.clone(),
                p.seq_len.to_string(),
                p.batch.to_string(),
                format!("{:.4}", p.total_ms),
                format!("{:.4}", p.dram_gb),
                format!("{:.6}", p.energy_j),
                format!("{:.4}", p.softmax_frac),
            ]
        })
        .collect();
    print!(
        "{}",
        render_csv(
            &[
                "device",
                "model",
                "strategy",
                "seq_len",
                "batch",
                "total_ms",
                "dram_gb",
                "energy_j",
                "softmax_frac"
            ],
            &rows
        )
    );
}
