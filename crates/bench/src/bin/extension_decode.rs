//! Extension experiment: autoregressive decode — where recomposition does
//! NOT help (a measured scope boundary of the paper).
//!
//! In token-by-token generation the attention "matrix" is one row per head;
//! it fits in L2 between kernels, so there is no off-chip softmax traffic
//! for recomposition to remove. Decode time is weight/KV-cache streaming.

use resoftmax_bench::device_from_args;
use resoftmax_core::format::{pct, render_table, speedup};
use resoftmax_model::{run_decode_step, ModelConfig, RunParams, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let model = ModelConfig::gpt_neo_1_3b();

    println!(
        "EXTENSION: autoregressive decode (one token, KV cache) on {} — {}\n",
        device.name, model.name
    );
    let mut rows = Vec::new();
    for ctx in [512usize, 2048, 8192] {
        let p = RunParams::new(ctx);
        let base = run_decode_step(&model, ctx, &p, device.clone()).expect("launchable");
        let sdf = run_decode_step(
            &model,
            ctx,
            &p.strategy(SoftmaxStrategy::Recomposed),
            device.clone(),
        )
        .expect("launchable");
        rows.push(vec![
            format!("{ctx}"),
            format!("{:.2} ms", base.total_time_s() * 1e3),
            format!("{:.1} tok/s", 1.0 / base.total_time_s()),
            pct(base.softmax_time_fraction()),
            speedup(base.total_time_s() / sdf.total_time_s()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "context",
                "latency/token",
                "throughput",
                "softmax frac",
                "SDF speedup"
            ],
            &rows
        )
    );
    println!("\nThe paper's mechanism needs an attention matrix too big for on-chip");
    println!("memory; decode's single-row attention never leaves L2 — recomposition");
    println!("is neutral here, and the softmax share is already negligible.");
}
