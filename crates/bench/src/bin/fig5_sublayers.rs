//! Fig. 5: (a) execution-time and (b) off-chip-traffic breakdown of the
//! decomposed softmax into LS / IR / GS. Paper: IR stays below 12.5% of
//! decomposed-softmax time; LS and GS dominate.

use resoftmax_bench::{device_from_args, PAPER_SEQ_LEN};
use resoftmax_core::experiments::fig5_sublayers;
use resoftmax_core::format::{pct, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);

    let rows = fig5_sublayers(&device, PAPER_SEQ_LEN).expect("launchable");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                pct(r.ls_time_frac),
                pct(r.ir_time_frac),
                pct(r.gs_time_frac),
                pct(r.ls_dram_frac),
                pct(r.ir_dram_frac),
                pct(r.gs_dram_frac),
            ]
        })
        .collect();

    println!(
        "FIG 5: Decomposed-softmax sub-layer shares on {} (L={PAPER_SEQ_LEN})",
        device.name
    );
    println!("Paper: IR < 12.5% of time; LS and GS dominate both charts\n");
    print!(
        "{}",
        render_table(
            &["model", "LS time", "IR time", "GS time", "LS dram", "IR dram", "GS dram"],
            &table
        )
    );
}
