//! Extension experiment: softmax recomposition on an encoder–decoder
//! (vanilla) transformer — the §2.1 model class the paper's evaluation
//! omits. A decoder layer has two softmax layers (causal self-attention and
//! rectangular cross-attention); both recompose unchanged.

use resoftmax_bench::device_from_args;
use resoftmax_core::format::{pct, render_table, speedup};
use resoftmax_model::{run_seq2seq, RunParams, Seq2SeqConfig, SoftmaxStrategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = device_from_args(&args);
    let cfg = Seq2SeqConfig::vanilla_transformer_big();

    println!(
        "EXTENSION: encoder–decoder ({}) on {} — recomposition on self- and cross-attention\n",
        cfg.name, device.name
    );
    let mut rows = Vec::new();
    for (src, tgt) in [(1024usize, 1024usize), (4096, 1024), (4096, 4096)] {
        let p = RunParams::new(src);
        let base = run_seq2seq(&cfg, src, tgt, &p, device.clone()).expect("launchable");
        let sdf = run_seq2seq(
            &cfg,
            src,
            tgt,
            &p.clone().strategy(SoftmaxStrategy::Recomposed),
            device.clone(),
        )
        .expect("launchable");
        let online = run_seq2seq(
            &cfg,
            src,
            tgt,
            &p.strategy(SoftmaxStrategy::OnlineFused),
            device.clone(),
        )
        .expect("launchable");
        rows.push(vec![
            format!("{src}"),
            format!("{tgt}"),
            format!("{:.2} ms", base.total_time_s() * 1e3),
            pct(base.softmax_time_fraction()),
            speedup(base.total_time_s() / sdf.total_time_s()),
            speedup(base.total_time_s() / online.total_time_s()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "src L",
                "tgt L",
                "baseline",
                "softmax frac",
                "SDF",
                "Online"
            ],
            &rows
        )
    );
    println!("\nCross-attention's rectangular L_tgt × L_src matrix recomposes exactly");
    println!("like the square case: LS tiling only sees tiles, not squareness.");
}
