//! The `tune` experiment binary: cost-model-driven autotuning across a
//! workload grid, reporting best-vs-default simulated speedup per bucket to
//! `BENCH_tune.json`.
//!
//! ```text
//! cargo run --release --bin tune [-- --smoke] [--out BENCH_tune.json]
//! ```
//!
//! `--smoke` shrinks the grid and search space for CI, and doubles as the
//! determinism gate: the whole grid is tuned once at 1 worker thread
//! (against the persisted `TUNE_CACHE.json`) and once at 4 (fresh
//! in-memory tuner), and the report rows must be bit-identical. The
//! persisted cache means a second invocation answers every bucket from
//! `TUNE_CACHE.json` — visible on the `tune.cache_hits` counter — and
//! reproduces the identical report.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::ModelConfig;
use resoftmax_tune::{
    precheck, precheck_decode, SearchMode, SearchSpace, TuneWorkload, Tuned, Tuner,
};

use crate::{write_report, BenchArgs, BenchRow};

/// Default path of the persisted tuning database.
pub const TUNE_CACHE_PATH: &str = "TUNE_CACHE.json";

fn grid(smoke: bool) -> Vec<(ModelConfig, TuneWorkload)> {
    let mut g = vec![
        (
            ModelConfig::bert_base(),
            TuneWorkload::Prefill {
                seq_len: 512,
                batch: 1,
            },
        ),
        (
            ModelConfig::bert_large(),
            TuneWorkload::Prefill {
                seq_len: 1024,
                batch: 2,
            },
        ),
        (
            ModelConfig::gpt_neo_1_3b(),
            TuneWorkload::Decode {
                ctxs: vec![512, 768, 1024, 2048],
            },
        ),
    ];
    if !smoke {
        g.extend([
            (
                ModelConfig::bert_large(),
                TuneWorkload::Prefill {
                    seq_len: 4096,
                    batch: 1,
                },
            ),
            (
                ModelConfig::bigbird_large(),
                TuneWorkload::Prefill {
                    seq_len: 4096,
                    batch: 1,
                },
            ),
            (
                ModelConfig::gpt_neo_1_3b(),
                TuneWorkload::Prefill {
                    seq_len: 2048,
                    batch: 4,
                },
            ),
            (
                ModelConfig::gpt_neo_1_3b(),
                TuneWorkload::Decode {
                    ctxs: vec![4096; 8],
                },
            ),
        ]);
    }
    g
}

/// Tunes the whole grid with `tuner`, verifying per-bucket invariants and
/// returning the report rows (deterministic order and content). Exposed so
/// the `sim_speed` bin can replay the exact `tune --smoke` workload under
/// different pricing-cache configurations.
pub fn run_grid(tuner: &Tuner, device: &DeviceSpec, smoke: bool) -> (Vec<BenchRow>, Vec<Tuned>) {
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (model, workload) in grid(smoke) {
        let tuned = tuner
            .tune(&model, device, &workload)
            .expect("default configuration must be runnable for every grid workload");

        // Acceptance invariants, checked on every run, not just in tests:
        // never slower than the default, and analyzer-clean.
        assert!(
            tuned.cost_s <= tuned.default_cost_s,
            "{}: tuned {} slower than default {}",
            workload.label(),
            tuned.cost_s,
            tuned.default_cost_s
        );
        match &tuned.workload {
            TuneWorkload::Prefill { .. } => {
                precheck(&model, &tuned.params).expect("tuned schedule analyzes clean");
            }
            TuneWorkload::Decode { ctxs } => {
                precheck_decode(&model, ctxs, &tuned.params)
                    .expect("tuned decode schedule analyzes clean");
            }
        }

        let config = format!("{}/{}/{}", model.name, device.name, tuned.workload.label());
        rows.push(BenchRow::new(
            "tune",
            &config,
            "default_s",
            tuned.default_cost_s,
        ));
        rows.push(BenchRow::new("tune", &config, "tuned_s", tuned.cost_s));
        rows.push(BenchRow::new("tune", &config, "speedup", tuned.speedup()));
        results.push(tuned);
    }
    (rows, results)
}

/// Entry point of the `tune` binary (root package `src/bin/tune.rs`); lives
/// here so the logic is unit-testable and shares the bench helpers.
pub fn tune_main() {
    let args = BenchArgs::parse();
    let out = args.out_or("BENCH_tune.json");
    let device = crate::device_from_args(&args.rest);
    let (space, mode) = if args.smoke {
        (SearchSpace::smoke(), SearchMode::Exhaustive)
    } else {
        (SearchSpace::paper_default(), SearchMode::Exhaustive)
    };

    // Leg A: 1 worker thread, persisted cache.
    resoftmax_parallel::set_thread_override(Some(1));
    let tuner = Tuner::with_cache(space.clone(), mode.clone(), TUNE_CACHE_PATH)
        .expect("tuning cache readable");
    let preloaded = tuner.loaded_entries();
    let (rows, results) = run_grid(&tuner, &device, args.smoke);
    tuner.save().expect("tuning cache writable");

    // Leg B: 4 worker threads, fresh in-memory tuner. The report must be
    // bit-identical — search is order-preserving and index-reduced.
    resoftmax_parallel::set_thread_override(Some(4));
    let fresh = Tuner::new(space, mode);
    let (rows4, _) = run_grid(&fresh, &device, args.smoke);
    resoftmax_parallel::set_thread_override(None);
    assert_eq!(
        serde_json::to_string(&rows).expect("rows serialize"),
        serde_json::to_string(&rows4).expect("rows serialize"),
        "tune rows must be bit-identical at 1 vs 4 worker threads"
    );
    println!("rows bit-identical at 1 and 4 worker threads");

    // At least one bucket must strictly improve on the default schedule.
    let improved = results.iter().filter(|t| t.speedup() > 1.0).count();
    assert!(
        improved >= 1,
        "no workload bucket improved over the default schedule"
    );

    // Warm starts must actually answer from the persisted database.
    let hits = resoftmax_obs::counter("tune.cache_hits").get();
    if preloaded > 0 {
        assert!(
            hits > 0,
            "cache preloaded {preloaded} entries but answered no queries from it"
        );
    }

    for t in &results {
        println!(
            "{:<24} default {:9.4} ms  tuned {:9.4} ms  speedup {:5.2}x  {}",
            t.workload.label(),
            t.default_cost_s * 1e3,
            t.cost_s * 1e3,
            t.speedup(),
            if t.cache_hit {
                "(cached)"
            } else {
                "(searched)"
            },
        );
    }
    println!(
        "cache: {preloaded} entries preloaded, {} total, {hits} hits, {} misses \
         (database: {TUNE_CACHE_PATH})",
        tuner.entries(),
        resoftmax_obs::counter("tune.cache_misses").get(),
    );
    println!(
        "transfer: {} cross-device winners harvested, {} survived precheck",
        resoftmax_obs::counter("tune.transfer_candidates").get(),
        resoftmax_obs::counter("tune.transfer_survivors").get(),
    );
    write_report(&out, &rows);
    crate::write_trace_if_enabled();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_nonempty_and_smoke_is_smaller() {
        assert!(!grid(true).is_empty());
        assert!(grid(true).len() < grid(false).len());
        // Both grids exercise prefill AND decode pricing.
        for smoke in [true, false] {
            let g = grid(smoke);
            assert!(g
                .iter()
                .any(|(_, w)| matches!(w, TuneWorkload::Prefill { .. })));
            assert!(g
                .iter()
                .any(|(_, w)| matches!(w, TuneWorkload::Decode { .. })));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn run_grid_reports_three_metrics_per_bucket() {
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let (rows, results) = run_grid(&tuner, &DeviceSpec::a100(), true);
        assert_eq!(rows.len(), results.len() * 3);
        assert!(rows.iter().all(|r| r.bin == "tune" && r.value > 0.0));
    }
}
