//! Shared helpers for the experiment binaries (`src/bin/*`) and criterion
//! benches that regenerate every table and figure of the paper.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin fig8_sd_sdf
//! cargo run --release -p resoftmax-bench --bin fig9_sweeps -- seq
//! cargo run --release -p resoftmax-bench --bin fig2_breakdown -- t4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{LibraryProfile, ModelConfig, RunParams, SoftmaxStrategy};
use serde::{Deserialize, Serialize};

mod tune_bin;

pub use tune_bin::{run_grid, tune_main, TUNE_CACHE_PATH};

/// The common CLI surface of the experiment binaries: `--smoke` (reduced
/// grid plus the 1-vs-4-worker-thread determinism gate), `--out <path>` or
/// a bare positional path (report destination), everything else passed
/// through (device names, sweep selectors).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BenchArgs {
    /// Reduced grid + determinism gate requested (`--smoke`).
    pub smoke: bool,
    /// Report destination (`--out <path>` or a bare non-flag argument).
    pub out: Option<String>,
    /// Remaining arguments, in order, for bin-specific parsing.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments (everything after the binary name).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument list (testable form of [`parse`](Self::parse)).
    pub fn from_args(args: Vec<String>) -> Self {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--smoke" => out.smoke = true,
                "--out" => out.out = iter.next(),
                _ if !a.starts_with("--") && out.out.is_none() && a.ends_with(".json") => {
                    out.out = Some(a);
                }
                _ => out.rest.push(a),
            }
        }
        out
    }

    /// The report path, or `default` when none was given.
    pub fn out_or(&self, default: &str) -> String {
        self.out.clone().unwrap_or_else(|| default.to_owned())
    }
}

/// One row of a machine-readable benchmark report — the schema shared by
/// every migrated experiment binary, so downstream tooling can concatenate
/// `BENCH_*.json` files without per-bin parsers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// The producing binary (`"tune"`, `"ablation_tile_size"`, …).
    pub bin: String,
    /// The grid point, e.g. `"bert-large/A100/prefill/L4096/b1"`.
    pub config: String,
    /// The measured quantity, e.g. `"tuned_s"`, `"speedup"`.
    pub metric: String,
    /// The value, in the metric's unit.
    pub value: f64,
}

impl BenchRow {
    /// Constructs a row.
    pub fn new(
        bin: impl Into<String>,
        config: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        BenchRow {
            bin: bin.into(),
            config: config.into(),
            metric: metric.into(),
            value,
        }
    }
}

/// Writes a benchmark report as pretty JSON (the `BENCH_*.json` convention)
/// and logs the destination.
pub fn write_report(path: &str, rows: &[BenchRow]) {
    let json = serde_json::to_string_pretty(&rows).expect("benchmark rows serialize");
    std::fs::write(path, format!("{json}\n")).expect("writable benchmark report path");
    println!("report written to {path} ({} rows)", rows.len());
}

/// Resolves a device name from an optional CLI argument
/// (`a100` default, `3090`, `t4`).
pub fn device_from_args(args: &[String]) -> DeviceSpec {
    match args
        .iter()
        .map(|s| s.to_lowercase())
        .find(|s| matches!(s.as_str(), "a100" | "3090" | "rtx3090" | "t4"))
    {
        None => DeviceSpec::a100(),
        Some(s) => match s.as_str() {
            "a100" => DeviceSpec::a100(),
            "3090" | "rtx3090" => DeviceSpec::rtx3090(),
            "t4" => DeviceSpec::t4(),
            _ => unreachable!(),
        },
    }
}

/// Paper's evaluation sequence length.
pub const PAPER_SEQ_LEN: usize = 4096;

/// `true` if the CLI args request machine-readable output (`--json`).
pub fn json_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Serializes experiment rows as pretty JSON for scripting against the
/// binaries (`fig8_sd_sdf -- --json | jq ...`).
pub fn print_json<T: serde::Serialize>(rows: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(rows).expect("experiment rows serialize")
    );
}

/// If tracing is on (`RESOFTMAX_TRACE`, or forced programmatically), writes
/// the merged chrome-trace of everything recorded so far to the trace output
/// path and returns it; does nothing when tracing is off.
///
/// Every experiment binary calls this on exit, so
/// `RESOFTMAX_TRACE=out.json cargo run --bin fig8_sd_sdf` yields one JSON
/// file merging the wall-clock spans (engine, simulator, parallel runtime)
/// with the simulated kernel timeline of every run, viewable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn write_trace_if_enabled() -> Option<String> {
    let path = resoftmax_obs::trace_output_path()?;
    let rec = resoftmax_obs::recorder();
    rec.write(&resoftmax_obs::ChromeTraceSink, &path)
        .expect("writable trace output path");
    let (spans, streams) = (rec.spans().len(), rec.sim_streams().len());
    eprintln!("trace: wrote {path} ({spans} wall-clock spans, {streams} simulated streams)");
    Some(path)
}

/// The complete static-analysis grid the `analyze` binary (and the
/// `perf_baseline` harness) sweeps: the evaluation models (plus the two
/// extra presets) × the four softmax strategies × the Fig. 9 sequence
/// lengths, the Fig. 7 library line-up at the paper's default length, and
/// the Fig. 9 batch sweep — in deterministic reporting order.
pub fn analysis_grid() -> Vec<(ModelConfig, RunParams)> {
    const SEQ_LENS: [usize; 5] = [512, 1024, 2048, 4096, 8192];
    const BATCHES: [usize; 4] = [1, 2, 4, 8];
    const STRATEGIES: [SoftmaxStrategy; 4] = [
        SoftmaxStrategy::Baseline,
        SoftmaxStrategy::Decomposed,
        SoftmaxStrategy::Recomposed,
        SoftmaxStrategy::OnlineFused,
    ];
    let models = {
        let mut m = ModelConfig::all_eval_models();
        m.push(ModelConfig::bert_base());
        m.push(ModelConfig::sparse_transformer());
        m
    };

    let mut combos = Vec::new();
    // Strategy × sequence-length grid (Fig. 8/9), paper-baseline library.
    for model in &models {
        for &strategy in &STRATEGIES {
            for &seq_len in &SEQ_LENS {
                combos.push((model.clone(), RunParams::new(seq_len).strategy(strategy)));
            }
        }
    }
    // Library line-up (Fig. 7) at the paper's default length.
    for model in &models {
        for profile in LibraryProfile::fig7_lineup() {
            for &strategy in &STRATEGIES {
                combos.push((
                    model.clone(),
                    RunParams::new(PAPER_SEQ_LEN)
                        .strategy(strategy)
                        .profile(profile.clone()),
                ));
            }
        }
    }
    // Batch sweep (Fig. 9 right).
    for model in &models {
        for &batch in &BATCHES {
            for &strategy in &STRATEGIES {
                combos.push((
                    model.clone(),
                    RunParams::new(PAPER_SEQ_LEN)
                        .strategy(strategy)
                        .batch(batch),
                ));
            }
        }
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_grid_shape() {
        let grid = analysis_grid();
        // 6 models × (4 strategies × 5 seq lens + lineup × 4 + 4 batches × 4).
        let lineup = LibraryProfile::fig7_lineup().len();
        assert_eq!(grid.len(), 6 * (4 * 5 + lineup * 4 + 4 * 4));
    }

    #[test]
    fn device_parsing() {
        assert_eq!(device_from_args(&[]).name, "A100");
        assert_eq!(device_from_args(&["t4".into()]).name, "T4");
        assert_eq!(device_from_args(&["3090".into()]).name, "RTX 3090");
        assert_eq!(
            device_from_args(&["seq".into(), "a100".into()]).name,
            "A100"
        );
    }
}
