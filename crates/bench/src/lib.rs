//! Shared helpers for the experiment binaries (`src/bin/*`) and criterion
//! benches that regenerate every table and figure of the paper.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p resoftmax-bench --bin fig8_sd_sdf
//! cargo run --release -p resoftmax-bench --bin fig9_sweeps -- seq
//! cargo run --release -p resoftmax-bench --bin fig2_breakdown -- t4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use resoftmax_gpusim::DeviceSpec;

/// Resolves a device name from an optional CLI argument
/// (`a100` default, `3090`, `t4`).
pub fn device_from_args(args: &[String]) -> DeviceSpec {
    match args
        .iter()
        .map(|s| s.to_lowercase())
        .find(|s| matches!(s.as_str(), "a100" | "3090" | "rtx3090" | "t4"))
    {
        None => DeviceSpec::a100(),
        Some(s) => match s.as_str() {
            "a100" => DeviceSpec::a100(),
            "3090" | "rtx3090" => DeviceSpec::rtx3090(),
            "t4" => DeviceSpec::t4(),
            _ => unreachable!(),
        },
    }
}

/// Paper's evaluation sequence length.
pub const PAPER_SEQ_LEN: usize = 4096;

/// `true` if the CLI args request machine-readable output (`--json`).
pub fn json_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Serializes experiment rows as pretty JSON for scripting against the
/// binaries (`fig8_sd_sdf -- --json | jq ...`).
pub fn print_json<T: serde::Serialize>(rows: &T) {
    println!(
        "{}",
        serde_json::to_string_pretty(rows).expect("experiment rows serialize")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_parsing() {
        assert_eq!(device_from_args(&[]).name, "A100");
        assert_eq!(device_from_args(&["t4".into()]).name, "T4");
        assert_eq!(device_from_args(&["3090".into()]).name, "RTX 3090");
        assert_eq!(
            device_from_args(&["seq".into(), "a100".into()]).name,
            "A100"
        );
    }
}
