//! Criterion benchmarks of the block-sparse substrate: SDDMM, block-sparse
//! softmax (monolithic and decomposed), and SpMM, on the BigBird pattern.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use resoftmax_kernels::sparse_numeric::bs_decomposed_softmax;
use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig};
use resoftmax_tensor::randn_matrix;

fn bench_sparse_pipeline(c: &mut Criterion) {
    let l = 512;
    let d = 32;
    let layout = pattern::bigbird(
        l,
        &BigBirdConfig {
            block: 32,
            ..Default::default()
        },
    );
    let q = randn_matrix::<f32>(l, d, 1.0, 1);
    let k = randn_matrix::<f32>(l, d, 1.0, 2);
    let v = randn_matrix::<f32>(l, d, 1.0, 3);
    let scores = sddmm(&q, &k, &layout).unwrap();
    let probs = block_sparse_softmax(&scores);

    let mut group = c.benchmark_group("block_sparse_L512");
    group.sample_size(20);
    group.bench_function("sddmm", |b| {
        b.iter(|| sddmm(black_box(&q), &k, &layout).unwrap());
    });
    group.bench_function("softmax_monolithic", |b| {
        b.iter(|| block_sparse_softmax(black_box(&scores)));
    });
    group.bench_function("softmax_decomposed", |b| {
        b.iter(|| bs_decomposed_softmax(black_box(&scores)));
    });
    group.bench_function("spmm", |b| b.iter(|| spmm(black_box(&probs), &v).unwrap()));
    group.finish();
}

fn bench_pattern_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_generation");
    for l in [1024usize, 4096] {
        group.bench_with_input(BenchmarkId::new("bigbird", l), &l, |b, &l| {
            b.iter(|| pattern::bigbird(l, &BigBirdConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("longformer", l), &l, |b, &l| {
            b.iter(|| pattern::longformer(l, &pattern::LongformerConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_pipeline, bench_pattern_generation);
criterion_main!(benches);
