//! Criterion benchmarks of the GPU simulator itself: how fast the model can
//! evaluate full inference schedules — the quantity that bounds how large a
//! design-space sweep (Fig. 9-style) is practical.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{build_schedule, run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn bench_schedule_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    for model in [ModelConfig::bert_large(), ModelConfig::bigbird_large()] {
        group.bench_with_input(BenchmarkId::from_parameter(&model.name), &model, |b, m| {
            b.iter(|| build_schedule(black_box(m), &RunParams::new(4096)));
        });
    }
    group.finish();
}

fn bench_full_inference_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_inference_L4096");
    group.sample_size(10);
    for model in ModelConfig::all_eval_models() {
        group.bench_with_input(BenchmarkId::new("baseline", &model.name), &model, |b, m| {
            b.iter(|| {
                run_inference(black_box(m), &RunParams::new(4096), DeviceSpec::a100()).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sdf", &model.name), &model, |b, m| {
            b.iter(|| {
                run_inference(
                    black_box(m),
                    &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
                    DeviceSpec::a100(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_build, bench_full_inference_sim);
criterion_main!(benches);
