//! Criterion benchmarks of the numeric softmax implementations: monolithic
//! (Eq. 1), decomposed LS→IR→GS (Eq. 2), and the fully fused attention
//! pipeline (Fig. 6), across row lengths.
//!
//! These measure the *Rust implementations* on the host CPU — useful for
//! library users and for catching performance regressions; the GPU-side
//! performance claims are reproduced by the `fig*` binaries instead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use resoftmax_fp16::F16;
use resoftmax_kernels::{
    decomposed_softmax, recomposed_attention, reference_attention, softmax_backward, softmax_rows,
};
use resoftmax_tensor::{randn_matrix, Matrix};

fn bench_softmax_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax_forward_f32");
    for l in [256usize, 1024, 4096] {
        let x = randn_matrix::<f32>(64, l, 2.0, 42);
        group.bench_with_input(BenchmarkId::new("monolithic", l), &x, |b, x| {
            b.iter(|| softmax_rows(black_box(x)));
        });
        group.bench_with_input(BenchmarkId::new("decomposed_t64", l), &x, |b, x| {
            b.iter(|| decomposed_softmax(black_box(x), 64).unwrap());
        });
    }
    group.finish();
}

fn bench_softmax_fp16(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax_forward_fp16");
    let x = randn_matrix::<F16>(64, 1024, 2.0, 7);
    group.bench_function("monolithic", |b| b.iter(|| softmax_rows(black_box(&x))));
    group.bench_function("decomposed_t64", |b| {
        b.iter(|| decomposed_softmax(black_box(&x), 64).unwrap());
    });
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_f32");
    group.sample_size(20);
    let l = 256;
    let d = 64;
    let q = randn_matrix::<f32>(l, d, 1.0, 1);
    let k = randn_matrix::<f32>(l, d, 1.0, 2);
    let v = randn_matrix::<f32>(l, d, 1.0, 3);
    let scale = 1.0 / (d as f64).sqrt();
    group.bench_function("reference_unfused", |b| {
        b.iter(|| reference_attention(black_box(&q), &k, &v, scale, None).unwrap());
    });
    group.bench_function("recomposed_fused_t64", |b| {
        b.iter(|| recomposed_attention(black_box(&q), &k, &v, 64, scale, None).unwrap());
    });
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let y = softmax_rows(&randn_matrix::<f32>(64, 1024, 2.0, 9));
    let dy = randn_matrix::<f32>(64, 1024, 1.0, 10);
    c.bench_function("softmax_backward_64x1024", |b| {
        b.iter(|| softmax_backward(black_box(&y), black_box(&dy)));
    });
}

fn bench_tile_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposed_tile_width");
    let x: Matrix<f32> = randn_matrix(64, 4096, 2.0, 11);
    for t in [16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| decomposed_softmax(black_box(&x), t).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_softmax_forward,
    bench_softmax_fp16,
    bench_attention,
    bench_backward,
    bench_tile_width_sweep
);
criterion_main!(benches);
