//! Cross-validation of the static numeric certificates against *measured*
//! error from the numeric kernels.
//!
//! For every dense `(strategy, L, T)` combination the `analyze` grid sweeps
//! — plus the fp16-accumulation (`SDF16`) combinations the tuner may now
//! enumerate — this suite runs the matching numeric pipeline in binary16 on
//! random score rows and checks that the empirical error never exceeds the
//! static bound:
//!
//! * max elementwise `|y₁₆ − y₆₄|` ≤ `bound.rel` (softmax outputs lie in
//!   `[0, 1]`, so a worst-case *relative* certificate implies the same
//!   absolute ceiling), and
//! * worst row-sum deviation `|Σᵢ y₁₆ − 1|` ≤ `bound.row_sum`.
//!
//! A violation on any combination means the abstract interpretation is
//! unsound for an input the kernels actually produce — the one failure mode
//! a certificate must not have. The converse (a slack bound) is fine and
//! expected: the static model charges worst-case roundoff at every step.

use resoftmax_analyzer::CERT_BUDGET_REL;
use resoftmax_bench::analysis_grid;
use resoftmax_fp16::F16;
use resoftmax_kernels::costs::TileConfig;
use resoftmax_kernels::{decomposed_softmax, decomposed_softmax_narrow_accum, softmax_rows_f64};
use resoftmax_model::{
    decode_error_bound, static_error_bound, ModelConfig, RunParams, SoftmaxStrategy,
};
use resoftmax_tensor::{randn_matrix, Matrix};
use std::collections::BTreeMap;

/// Rows measured per (strategy, L, T) combination and input style. The rows
/// are independent softmax problems, so this multiplies the sample count
/// without changing the worst case the certificate must dominate.
const ROWS: usize = 4;

/// Spread of the random score rows — matches the verification harness in
/// `resoftmax-core` (scores of roughly unit-variance QK^T at typical scale).
const SPREAD: f64 = 3.0;

/// Monolithic three-sweep softmax in binary16 with a wide normalizer — the
/// numeric model of the `Baseline` strategy's standalone Softmax kernel
/// (elementwise values round to fp16; the reduction accumulates wide).
fn monolithic_f16(x: &Matrix<F16>) -> Matrix<F16> {
    resoftmax_kernels::softmax_rows(x)
}

/// Tiled online softmax in binary16: running max / normalizer carried wide
/// across length-`t` chunks (the fused kernel holds them in fp32 registers),
/// stored values rounded to fp16 — the numeric model of `OnlineFused`'s
/// softmax recurrence, without the PV accumulation that follows it.
fn online_softmax_f16(x: &Matrix<F16>, t: usize) -> Matrix<F16> {
    let (rows, cols) = x.shape();
    let mut y = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let mut m = f64::NEG_INFINITY;
        let mut d = 0.0f64;
        for base in (0..cols).step_by(t) {
            let end = (base + t).min(cols);
            let chunk_max = (base..end)
                .map(|c| x.get(r, c).to_f64())
                .fold(f64::NEG_INFINITY, f64::max);
            let new_m = m.max(chunk_max);
            if new_m == f64::NEG_INFINITY {
                continue;
            }
            if m != f64::NEG_INFINITY {
                d *= (m - new_m).exp();
            }
            for c in base..end {
                let e = F16::from_f64((x.get(r, c).to_f64() - new_m).exp());
                d += e.to_f64();
            }
            m = new_m;
        }
        if m == f64::NEG_INFINITY {
            continue;
        }
        for c in 0..cols {
            let e = F16::from_f64((x.get(r, c).to_f64() - m).exp());
            y.set(r, c, F16::from_f64(e.to_f64() / d));
        }
    }
    y
}

/// Runs the numeric pipeline matching `strategy` on `x`.
fn run_pipeline(strategy: SoftmaxStrategy, x: &Matrix<F16>, t: usize) -> Matrix<F16> {
    match strategy {
        SoftmaxStrategy::Baseline => monolithic_f16(x),
        SoftmaxStrategy::Decomposed | SoftmaxStrategy::Recomposed => {
            decomposed_softmax(x, t).expect("grid tile divides grid length")
        }
        SoftmaxStrategy::RecomposedFp16 => {
            decomposed_softmax_narrow_accum(x, t).expect("grid tile divides grid length")
        }
        SoftmaxStrategy::OnlineFused => online_softmax_f16(x, t),
    }
}

/// Measured (max |Δ| vs f64 oracle, worst row-sum deviation) for one input.
fn measure(strategy: SoftmaxStrategy, x: &Matrix<F16>, t: usize) -> (f64, f64) {
    let oracle = softmax_rows_f64(x);
    let y = run_pipeline(strategy, x, t);
    let mut max_abs = 0.0f64;
    let mut worst_sum = 0.0f64;
    for r in 0..x.rows() {
        let mut sum = 0.0f64;
        for c in 0..x.cols() {
            max_abs = max_abs.max((y.get(r, c).to_f64() - oracle.get(r, c)).abs());
            sum += y.get(r, c).to_f64();
        }
        worst_sum = worst_sum.max((sum - 1.0).abs());
    }
    (max_abs, worst_sum)
}

/// The two input styles stressed per combination: flat random rows (every
/// output small — stresses the normalizer) and spiked rows with one dominant
/// score (an output near 1 — stresses the absolute ceiling).
fn inputs(l: usize, seed: usize) -> [Matrix<F16>; 2] {
    let flat = randn_matrix::<F16>(ROWS, l, SPREAD, seed as u64);
    let mut spiked = flat.clone();
    for r in 0..ROWS {
        let c = seed.wrapping_mul(31).wrapping_add(r * 97) % l;
        // +15 keeps the spiked exponential dominant even over 8192 summed
        // competitors (e¹⁵ ≫ L·E[eˣ]), putting one output near 1.
        let v = spiked.get(r, c).to_f64() + 15.0;
        spiked.set(r, c, F16::from_f64(v));
    }
    [flat, spiked]
}

/// Every dense combination in the analysis grid, deduplicated to the
/// numerics-relevant key `(strategy, L, T)`, plus the `SDF16` combinations
/// at the tile widths that certify.
fn combos() -> BTreeMap<(String, usize, usize), (SoftmaxStrategy, RunParams, ModelConfig)> {
    let mut out = BTreeMap::new();
    let dense = ModelConfig::bert_large();
    for (model, params) in analysis_grid() {
        if static_error_bound(&model, &params).is_none() {
            continue; // sparse attention: no dense certificate to validate
        }
        let key = (
            params.strategy.label().to_owned(),
            params.seq_len,
            params.tile.n,
        );
        out.entry(key)
            .or_insert_with(|| (params.strategy, params.clone(), model));
    }
    // SDF16 is not in the grid's fp32 line-up; sweep it at its certified
    // tile widths across the same sequence lengths.
    for &t in &[16usize, 32] {
        for &l in &[512usize, 1024, 2048, 4096, 8192] {
            let params = RunParams::new(l)
                .strategy(SoftmaxStrategy::RecomposedFp16)
                .tile(TileConfig::new(64, t));
            let key = (params.strategy.label().to_owned(), l, t);
            out.entry(key)
                .or_insert_with(|| (SoftmaxStrategy::RecomposedFp16, params, dense.clone()));
        }
    }
    out
}

/// The load-bearing check: for every combination, empirical error ≤ static
/// bound, on both input styles, for both the elementwise and row-sum terms.
#[test]
fn empirical_error_never_exceeds_static_bound() {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for (seed, ((label, l, t), (strategy, params, model))) in combos().into_iter().enumerate() {
        let bound = static_error_bound(&model, &params)
            .unwrap_or_else(|| panic!("dense combo {label}/L{l}/T{t} must have a certificate"));
        for (style, x) in ["flat", "spiked"].iter().zip(inputs(l, seed + 1)) {
            let (max_abs, worst_sum) = measure(strategy, &x, t);
            checked += 1;
            if max_abs > bound.rel {
                violations.push(format!(
                    "{label}/L{l}/T{t}/{style}: measured |Δ| {max_abs:.3e} > certified {:.3e}",
                    bound.rel
                ));
            }
            if worst_sum > bound.row_sum {
                violations.push(format!(
                    "{label}/L{l}/T{t}/{style}: row-sum dev {worst_sum:.3e} > certified {:.3e}",
                    bound.row_sum
                ));
            }
        }
    }
    assert!(
        checked >= 2 * (4 * 5 + 2 * 5),
        "grid shrank: {checked} measurements"
    );
    assert!(
        violations.is_empty(),
        "static certificates violated empirically:\n{}",
        violations.join("\n")
    );
}

/// Acceptance check: every fp32 combination in the grid certifies under the
/// budget (the new numerics gate must not reject previously-valid
/// schedules), and the certified SDF16 sweep certifies too.
#[test]
fn every_grid_combo_certifies() {
    for ((label, l, t), (_, params, model)) in combos() {
        let bound = static_error_bound(&model, &params).expect("dense combo");
        assert!(
            bound.certifies(CERT_BUDGET_REL),
            "{label}/L{l}/T{t}: rel {:.3e} exceeds budget {CERT_BUDGET_REL:.1e}",
            bound.rel
        );
    }
}

/// The corrupted variant — fp16 LS accumulation at the grid's default tile
/// width — must be *rejected* by the static pass, and the empirical pipeline
/// shows why: its measured error exceeds what the budget permits at tiles
/// this wide, so the gate is load-bearing rather than conservative noise.
#[test]
fn uncertified_wide_fp16_variant_is_rejected() {
    let model = ModelConfig::bert_large();
    let params = RunParams::new(4096).strategy(SoftmaxStrategy::RecomposedFp16);
    assert_eq!(params.tile.n, 64, "default tile is the paper's T >= 64");
    let bound = static_error_bound(&model, &params).expect("dense combo");
    assert!(
        !bound.certifies(CERT_BUDGET_REL),
        "wide-tile fp16 accumulation must fail certification, got rel {:.3e}",
        bound.rel
    );
    // The static bound still dominates the measurement even where it fails
    // the budget — rejection means "cannot prove it is accurate enough",
    // and soundness must hold on both sides of the gate.
    let [flat, spiked] = inputs(4096, 99);
    for x in [flat, spiked] {
        let (max_abs, worst_sum) = measure(SoftmaxStrategy::RecomposedFp16, &x, 64);
        assert!(max_abs <= bound.rel, "{max_abs:.3e} > {:.3e}", bound.rel);
        assert!(worst_sum <= bound.row_sum);
    }
}

/// Decode certificates agree with the prefill model: a heterogeneous batch
/// is certified at its worst (longest) context, exactly as if that context
/// were a prefill of the same shape.
#[test]
fn decode_bound_matches_worst_context() {
    let params = RunParams::new(64)
        .strategy(SoftmaxStrategy::RecomposedFp16)
        .tile(TileConfig::new(64, 16));
    let hetero = decode_error_bound(&[128, 2048, 512], &params).expect("decode certificate");
    let worst = decode_error_bound(&[2048], &params).expect("decode certificate");
    assert_eq!(hetero, worst);
    assert_eq!(hetero.ctx, 2048);
    // And the decode certificate for the fp16 LS epilogue is the same
    // decomposed-fp16 bound the prefill path certifies.
    let prefill = static_error_bound(
        &ModelConfig::bert_large(),
        &RunParams::new(2048)
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .tile(TileConfig::new(64, 16)),
    )
    .expect("prefill certificate");
    assert_eq!(hetero, prefill);
}
