//! Serving integration: a [`resoftmax_serve::IterationPlanner`] that prices
//! every continuous-batching engine iteration with its tuned schedule.
//!
//! Each engine iteration fuses chunked-prefill rows with batched-decode
//! rows; the planner canonicalizes the iteration's row mix to its
//! power-of-two decode bucket, tunes that bucket (answered from the cache
//! after the first occurrence), and transfers the winning knobs onto the
//! base parameters. A serving run touches only a handful of buckets, so the
//! searches amortize to near-zero after warmup — and with a persisted
//! [`Tuner`], across processes.
//!
//! Fleets tune per replica: [`TunedPlanner::for_fleet`] builds one planner
//! per replica device (sharing the tuner and its cache), so a heterogeneous
//! fleet serves each iteration with the schedule tuned for the device it
//! actually runs on.
//!
//! Fallback rules mirror [`crate::SessionTuneExt`]: if tuning fails or the
//! tuned knobs are not decode-legal for the *exact* row mix, the iteration
//! is priced with the base parameters (counted on `tune.fallbacks`). The
//! planner is deterministic in `ctxs` and the tuner's configuration, as the
//! serve engine requires.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams};
use resoftmax_serve::IterationPlanner;

use crate::cache::fnv1a;
use crate::oracle::{precheck_decode, TuneWorkload};
use crate::search::SearchMode;
use crate::session_ext::apply_knobs;
use crate::tuner::Tuner;

/// Decode buckets whose (power-of-two-rounded) context reaches this length
/// are "long-tail": the schedule space there is wide enough that the
/// exhaustive sweep's cost stops paying for itself, so the planner searches
/// them with a seeded annealer instead (counted on `tune.annealed_buckets`).
const LONG_TAIL_CTX: usize = 2048;

/// Prices serving iterations with tuned schedules. Construct with
/// [`TunedPlanner::new`] (one device) or [`TunedPlanner::for_fleet`] (one
/// planner per replica) and pass to
/// [`resoftmax_serve::FleetBuilder::planner`] or
/// [`resoftmax_serve::run_serve_with`].
pub struct TunedPlanner<'a> {
    tuner: &'a Tuner,
    model: ModelConfig,
    device: DeviceSpec,
}

impl<'a> TunedPlanner<'a> {
    /// A planner tuning iterations of `model` on `device` through `tuner`.
    pub fn new(tuner: &'a Tuner, model: &ModelConfig, device: &DeviceSpec) -> Self {
        TunedPlanner {
            tuner,
            model: model.clone(),
            device: device.clone(),
        }
    }

    /// One planner per fleet replica, in replica order, all sharing `tuner`
    /// (and therefore its result cache — replicas of the same device type
    /// reuse each other's searches).
    pub fn for_fleet(tuner: &'a Tuner, model: &ModelConfig, devices: &[DeviceSpec]) -> Vec<Self> {
        devices
            .iter()
            .map(|d| TunedPlanner::new(tuner, model, d))
            .collect()
    }

    /// The device this planner tunes for.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }
}

impl IterationPlanner for TunedPlanner<'_> {
    fn plan(&self, ctxs: &[usize], base: &RunParams) -> RunParams {
        let workload = TuneWorkload::Decode {
            ctxs: ctxs.to_vec(),
        };
        let bucket = workload.bucket();
        let long_tail = match &bucket {
            TuneWorkload::Decode { ctxs } => {
                ctxs.iter().copied().max().unwrap_or(0) >= LONG_TAIL_CTX
            }
            TuneWorkload::Prefill { .. } => false,
        };
        let result = if long_tail {
            resoftmax_obs::counter("tune.annealed_buckets").incr();
            // The seed derives from the bucket label, so every planner
            // (and every rerun) anneals a given bucket identically — the
            // answer stays deterministic and cache-stable.
            let seed = u64::from_str_radix(&fnv1a(bucket.label().as_bytes()), 16)
                .expect("fnv1a emits 16 hex digits");
            self.tuner.tune_with_mode(
                &self.model,
                &self.device,
                &workload,
                &SearchMode::annealed(seed),
            )
        } else {
            self.tuner.tune(&self.model, &self.device, &workload)
        };
        let Ok(tuned) = result else {
            resoftmax_obs::counter("tune.fallbacks").incr();
            return base.clone();
        };
        let candidate = apply_knobs(base, &tuned.params);
        if precheck_decode(&self.model, ctxs, &candidate).is_ok() {
            candidate
        } else {
            resoftmax_obs::counter("tune.fallbacks").incr();
            base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchMode;
    use crate::space::SearchSpace;
    use resoftmax_serve::{
        run_serve, run_serve_with, FleetBuilder, IterationPlanner, RouterPolicy, ServeConfig,
    };

    fn cfg() -> ServeConfig {
        ServeConfig {
            requests: 4,
            arrival_rate_hz: 64.0,
            prompt_tokens: (64, 128),
            decode_tokens: (4, 8),
            max_batch: 4,
            prefill_chunk: 64,
            ..ServeConfig::default()
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn tuned_serving_completes_no_slower_than_baseline() {
        let model = ModelConfig::gpt_neo_1_3b();
        let device = DeviceSpec::a100();
        let params = RunParams::new(4096);
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let planner = TunedPlanner::new(&tuner, &model, &device);

        let baseline = run_serve(&model, &device, &params, &cfg()).unwrap();
        let tuned = run_serve_with(&model, &device, &params, &cfg(), &planner).unwrap();
        assert_eq!(tuned.completed, cfg().requests);
        assert!(tuned.sim_time_s <= baseline.sim_time_s);
        // The run touches few buckets; repeats must hit the cache.
        assert!(tuner.entries() >= 1);
        let hits = resoftmax_obs::counter("tune.cache_hits").get();
        let rerun = run_serve_with(&model, &device, &params, &cfg(), &planner).unwrap();
        assert_eq!(rerun, tuned);
        assert!(resoftmax_obs::counter("tune.cache_hits").get() > hits);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn long_tail_buckets_anneal_deterministically() {
        let model = ModelConfig::gpt_neo_1_3b();
        let device = DeviceSpec::a100();
        let params = RunParams::new(4096);
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let planner = TunedPlanner::new(&tuner, &model, &device);

        // 3000 rounds up to a 4096-token bucket: long tail → annealed.
        let long = [3000, 1500];
        let before = resoftmax_obs::counter("tune.annealed_buckets").get();
        let first = planner.plan(&long, &params);
        assert!(
            resoftmax_obs::counter("tune.annealed_buckets").get() > before,
            "long-tail bucket must route through the annealer"
        );
        // The annealer seed derives from the bucket label, so replanning
        // answers identically (from the cache, under the annealed key).
        let second = planner.plan(&long, &params);
        assert_eq!(second, first);

        // Short buckets stay on the tuner's default mode.
        let mid = resoftmax_obs::counter("tune.annealed_buckets").get();
        planner.plan(&[256, 128], &params);
        assert_eq!(resoftmax_obs::counter("tune.annealed_buckets").get(), mid);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn heterogeneous_fleet_tunes_per_replica_device() {
        let model = ModelConfig::gpt_neo_1_3b();
        let devices = [DeviceSpec::a100(), DeviceSpec::t4()];
        let params = RunParams::new(4096);
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let planners = TunedPlanner::for_fleet(&tuner, &model, &devices);
        assert_eq!(planners.len(), 2);
        assert_eq!(planners[1].device().name, "T4");

        let mut builder = FleetBuilder::new()
            .model(model)
            .params(params)
            .router(RouterPolicy::LeastLoaded)
            .workload(cfg());
        for (d, p) in devices.iter().zip(&planners) {
            builder = builder
                .replica(d.clone())
                .planner(p as &dyn IterationPlanner);
        }
        let report = builder.build().unwrap().run().unwrap();
        assert_eq!(report.completed, cfg().requests);
        assert_eq!(report.replicas[0].device, "A100");
        assert_eq!(report.replicas[1].device, "T4");
        // Both device types were tuned (distinct cache keys per device).
        assert!(tuner.entries() >= 2, "entries: {}", tuner.entries());
    }
}
