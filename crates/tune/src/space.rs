//! The schedule knob space the tuner searches.
//!
//! Three dimensions, matching the paper's §5 sensitivity axes:
//!
//! * **Tile** — the MatMul output tile `(m, n)`; its width `n` is the LS
//!   sub-vector length `T` (§3.3 requires them equal, which the schedule
//!   builder enforces by construction).
//! * **Strategy** — monolithic baseline, decomposed (SD), recomposed (SDF),
//!   fp16-accumulation recomposed (SDF16, admissible only where the
//!   oracle's numeric-certification gate holds), or the fully fused
//!   online-softmax extension.
//! * **LS split** — the declared [`ParallelSplit`] of standalone Local
//!   Softmax kernels. Deliberately includes points the static analyzer
//!   rejects (`ReductionAxis`), so the legality gate is exercised on every
//!   search rather than trusted.

use resoftmax_gpusim::ParallelSplit;
use resoftmax_kernels::costs::TileConfig;
use resoftmax_model::{LibraryProfile, RunParams, SoftmaxStrategy};
use serde::{Deserialize, Serialize};

/// Bounds of one tuning search: the cross product of the listed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidate tile heights `m`.
    pub tile_ms: Vec<usize>,
    /// Candidate tile widths `n` (the paper's `T`).
    pub tile_ns: Vec<usize>,
    /// Candidate softmax strategies.
    pub strategies: Vec<SoftmaxStrategy>,
    /// Candidate LS parallel-split overrides (`None` keeps the generators'
    /// defaults).
    pub ls_splits: Vec<Option<ParallelSplit>>,
}

impl SearchSpace {
    /// The full search space: tile heights {32, 64, 128} × widths
    /// {16, 32, 64, 128, 256} (the §5.2 ablation range around the paper's
    /// `T ≥ 64` observation) × all five strategies × every declarable LS
    /// split — including points a gate must prune: the always-illegal
    /// `ReductionAxis` split (analyzer gate) and SDF16 at wide tiles
    /// (numeric-certification gate).
    pub fn paper_default() -> Self {
        SearchSpace {
            tile_ms: vec![32, 64, 128],
            tile_ns: vec![16, 32, 64, 128, 256],
            strategies: vec![
                SoftmaxStrategy::Baseline,
                SoftmaxStrategy::Decomposed,
                SoftmaxStrategy::Recomposed,
                SoftmaxStrategy::RecomposedFp16,
                SoftmaxStrategy::OnlineFused,
            ],
            ls_splits: vec![
                None,
                Some(ParallelSplit::OutputRows),
                Some(ParallelSplit::RowSegments),
                Some(ParallelSplit::ReductionAxis),
            ],
        }
    }

    /// A reduced grid for smoke tests and CI: one tile height, three
    /// widths, all strategies, and one illegal split point to keep the
    /// pruning path hot.
    pub fn smoke() -> Self {
        SearchSpace {
            tile_ms: vec![64],
            tile_ns: vec![32, 64, 128],
            strategies: vec![
                SoftmaxStrategy::Baseline,
                SoftmaxStrategy::Decomposed,
                SoftmaxStrategy::Recomposed,
                SoftmaxStrategy::RecomposedFp16,
                SoftmaxStrategy::OnlineFused,
            ],
            ls_splits: vec![None, Some(ParallelSplit::ReductionAxis)],
        }
    }

    /// Stable fingerprint of the bounds, part of the cache key: a cache
    /// entry tuned over different bounds must not be reused.
    pub fn fingerprint(&self) -> String {
        crate::cache::fnv1a(
            serde_json::to_string(self)
                .expect("search space serializes")
                .as_bytes(),
        )
    }

    /// Enumerates the candidate configurations for `base` in deterministic
    /// order. The first entry is always `base` itself (the default
    /// schedule), so a search over this list can never return something
    /// slower than the default. Knob combinations that differ only in
    /// unreachable dimensions are canonicalized and deduplicated — an LS
    /// split override only reaches a schedule that has a standalone LS
    /// kernel.
    pub fn candidates(&self, base: &RunParams) -> Vec<RunParams> {
        let mut out = vec![base.clone()];
        for &strategy in &self.strategies {
            for &m in &self.tile_ms {
                for &n in &self.tile_ns {
                    for &split in &self.ls_splits {
                        let split = if has_standalone_ls(strategy, &base.profile) {
                            split
                        } else {
                            None
                        };
                        let cand = base
                            .clone()
                            .strategy(strategy)
                            .tile(TileConfig::new(m, n))
                            .ls_split(split);
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        }
        out
    }
}

/// `true` if a schedule built with this strategy/profile pair contains a
/// standalone Local Softmax kernel that an [`RunParams::ls_split`] override
/// can reach: SD always runs LS standalone; SDF only in the degenerate
/// separate-scale/mask profiles where the fused epilogue is unavailable.
pub fn has_standalone_ls(strategy: SoftmaxStrategy, profile: &LibraryProfile) -> bool {
    match strategy {
        SoftmaxStrategy::Decomposed => true,
        SoftmaxStrategy::Recomposed | SoftmaxStrategy::RecomposedFp16 => {
            profile.separate_scale_mask
        }
        SoftmaxStrategy::Baseline | SoftmaxStrategy::OnlineFused => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_start_with_base_and_dedupe() {
        let space = SearchSpace::smoke();
        let base = RunParams::new(512);
        let cands = space.candidates(&base);
        assert_eq!(cands[0], base);
        // No duplicates.
        for (i, a) in cands.iter().enumerate() {
            assert!(!cands[i + 1..].contains(a), "duplicate candidate {a:?}");
        }
        // Split variants only appear for strategies with a standalone LS.
        for c in &cands {
            if c.ls_split.is_some() {
                assert!(has_standalone_ls(c.strategy, &c.profile), "{c:?}");
            }
        }
        // Smoke grid: base + 3 tiles × (Baseline 1 + SD 2 + SDF 1 + SDF16 1
        // + Online 1 split variants) - 1 duplicate of base (Baseline 64×64).
        assert_eq!(cands.len(), 18);
    }

    #[test]
    fn default_space_contains_paper_point() {
        let space = SearchSpace::paper_default();
        let cands = space.candidates(&RunParams::new(4096));
        assert!(cands
            .iter()
            .any(|c| c.strategy == SoftmaxStrategy::Recomposed
                && c.tile.m == 64
                && c.tile.n == 64));
        assert!(cands.len() > 50);
    }

    #[test]
    fn fingerprint_distinguishes_spaces() {
        assert_ne!(
            SearchSpace::paper_default().fingerprint(),
            SearchSpace::smoke().fingerprint()
        );
        assert_eq!(
            SearchSpace::smoke().fingerprint(),
            SearchSpace::smoke().fingerprint()
        );
    }
}
