//! The cost oracle: legality pruning (static) + simulated execution time.
//!
//! Candidates pass through four gates, cheapest first:
//!
//! 1. **Static knob legality** — an LS split that crosses the reduction
//!    axis, a tile width that does not divide the sequence length, a
//!    sequence length incompatible with a sparse model's block size. These
//!    are rejected before any schedule is built.
//! 2. **Numeric certification** — the analyzer's error model bounds the
//!    candidate's worst-case softmax error from `(strategy, T, ctx)` alone;
//!    a bound exceeding [`resoftmax_analyzer::CERT_BUDGET_REL`] prunes the
//!    candidate, again before any schedule exists. This is what makes
//!    precision-diverse strategies (`SDF16`) safe to enumerate: the tuner
//!    only ever prices them where the certificate holds.
//! 3. **Static analysis** — the built schedule runs through
//!    `resoftmax-analyzer`; any `Error`-severity diagnostic prunes the
//!    candidate.
//! 4. **Launchability** — the simulator refuses kernels whose thread block
//!    exceeds the device's SM resources.
//!
//! Only candidates clearing all four are priced; the price is the
//! simulated end-to-end time of the workload's schedule, which is what the
//! search minimizes.

use crate::TuneError;
use resoftmax_analyzer::{ErrorBound, CERT_BUDGET_REL};
use resoftmax_gpusim::{DeviceSpec, Gpu, ParallelSplit};
use resoftmax_model::{
    build_batched_decode_schedule, build_schedule, check_decode_schedule, check_schedule,
    decode_error_bound, static_error_bound, AttentionKind, ModelConfig, RunParams, Session,
    SoftmaxStrategy,
};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// A workload bucket the tuner optimizes for: one full-sequence inference
/// iteration, or one continuous-batching engine iteration (the serving
/// scheduler's fused prefill + batched-decode schedule).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneWorkload {
    /// Full-sequence inference at `seq_len` × `batch`.
    Prefill {
        /// Sequence length `L`.
        seq_len: usize,
        /// Batch size.
        batch: usize,
    },
    /// One batched decode iteration: one token generated per entry of
    /// `ctxs`, each row attending a KV cache of that length.
    Decode {
        /// Per-row context lengths.
        ctxs: Vec<usize>,
    },
}

impl TuneWorkload {
    /// Canonicalizes the workload to its cache bucket: every dimension is
    /// rounded up to the next power of two, so nearby workloads share one
    /// tuning result. Decode buckets collapse the heterogeneous row mix to
    /// `rows` uniform rows at the longest (bucketed) context — the
    /// conservative representative the serving planner tunes against.
    pub fn bucket(&self) -> TuneWorkload {
        match self {
            TuneWorkload::Prefill { seq_len, batch } => TuneWorkload::Prefill {
                seq_len: seq_len.next_power_of_two(),
                batch: batch.next_power_of_two(),
            },
            TuneWorkload::Decode { ctxs } => {
                let rows = ctxs.len().next_power_of_two();
                let max_ctx = ctxs.iter().copied().max().unwrap_or(1).next_power_of_two();
                TuneWorkload::Decode {
                    ctxs: vec![max_ctx; rows],
                }
            }
        }
    }

    /// Stable label for reports and cache keys, e.g. `"prefill/L4096/b1"`
    /// or `"decode/r8/c1024"`.
    pub fn label(&self) -> String {
        match self {
            TuneWorkload::Prefill { seq_len, batch } => format!("prefill/L{seq_len}/b{batch}"),
            TuneWorkload::Decode { ctxs } => {
                let max_ctx = ctxs.iter().copied().max().unwrap_or(0);
                format!("decode/r{}/c{max_ctx}", ctxs.len())
            }
        }
    }
}

/// Why a candidate was pruned before (or instead of) being priced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skip {
    /// The configuration cannot build a schedule at all (tile divisibility,
    /// sparse block size, unsupported decode combination, …).
    InvalidConfig(String),
    /// The declared LS split crosses the category's reduction axis; the
    /// analyzer would reject the schedule, so it is never built.
    IllegalSplit(ParallelSplit),
    /// The certified worst-case numeric error of the candidate exceeds the
    /// budget; the analyzer would reject the schedule, so it is never built.
    Numerics(String),
    /// The built schedule fails static analysis.
    Analysis(String),
    /// A kernel cannot launch on the target device.
    Launch(String),
}

impl core::fmt::Display for Skip {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Skip::InvalidConfig(r) => write!(f, "invalid configuration: {r}"),
            Skip::IllegalSplit(s) => write!(
                f,
                "LS split {s:?} crosses the reduction axis (legal: {LEGAL_LS_SPLITS:?})"
            ),
            Skip::Numerics(r) => write!(f, "numeric certification failed: {r}"),
            Skip::Analysis(r) => write!(f, "static analysis rejected the schedule: {r}"),
            Skip::Launch(r) => write!(f, "kernel cannot launch: {r}"),
        }
    }
}

/// The LS splits the analyzer's parallel rule accepts for Local Softmax
/// kernels (LS reduces within one sub-vector, so rows, segments and tiles
/// are all disjoint-output splits). Kept in sync with the analyzer by a
/// test that runs each variant through `resoftmax_analyzer::analyze`.
pub const LEGAL_LS_SPLITS: [ParallelSplit; 3] = [
    ParallelSplit::OutputRows,
    ParallelSplit::RowSegments,
    ParallelSplit::OutputTiles,
];

fn check_ls_split(params: &RunParams) -> Result<(), Skip> {
    match params.ls_split {
        Some(s) if !LEGAL_LS_SPLITS.contains(&s) => Err(Skip::IllegalSplit(s)),
        _ => Ok(()),
    }
}

/// The numerics gate: prunes a candidate whose statically certified error
/// bound exceeds the budget. Like `check_ls_split`, this must run before
/// any schedule is built — the builders debug-assert their own analysis,
/// and the numerics rule is part of it.
fn check_numerics(bound: Option<ErrorBound>) -> Result<(), Skip> {
    match bound {
        Some(b) if !b.certifies(CERT_BUDGET_REL) => Err(Skip::Numerics(format!(
            "certified relative error bound {:.3e} exceeds the {CERT_BUDGET_REL:.1e} budget \
             (ctx {}, T {})",
            b.rel, b.ctx, b.t
        ))),
        _ => Ok(()),
    }
}

/// Statically validates a full-sequence candidate without simulating it:
/// knob legality, buildability, and a clean analyzer report. This is the
/// same pruning helper the tuner's search uses; bench bins reuse it to
/// skip-with-reason instead of panicking on bad grid points.
pub fn precheck(model: &ModelConfig, params: &RunParams) -> Result<(), Skip> {
    check_ls_split(params)?;
    check_numerics(static_error_bound(model, params))?;
    // Session::build performs the dimensional validation (nonzero dims,
    // sparse block size, tile divisibility) with typed errors.
    Session::builder()
        .model(model.clone())
        .params(params.clone())
        .build()
        .map_err(|e| match e {
            resoftmax_model::Error::InvalidConfig { reason } => Skip::InvalidConfig(reason),
            other => Skip::InvalidConfig(other.to_string()),
        })?;
    let schedule = build_schedule(model, params);
    let report = check_schedule(model, params, &schedule);
    if report.has_errors() {
        return Err(Skip::Analysis(report.render()));
    }
    Ok(())
}

/// [`precheck`] for a batched-decode candidate.
pub fn precheck_decode(
    model: &ModelConfig,
    ctxs: &[usize],
    params: &RunParams,
) -> Result<(), Skip> {
    check_ls_split(params)?;
    if !matches!(model.attention, AttentionKind::Dense { .. }) {
        return Err(Skip::InvalidConfig(format!(
            "decode cost model covers dense attention only; model '{}' is sparse",
            model.name
        )));
    }
    if params.strategy == SoftmaxStrategy::OnlineFused {
        return Err(Skip::InvalidConfig(
            "decode attention is a single row; online fusion is the GEMV itself".to_owned(),
        ));
    }
    if ctxs.is_empty() || ctxs.contains(&0) {
        return Err(Skip::InvalidConfig(
            "decode batch must be nonempty with nonzero contexts".to_owned(),
        ));
    }
    if params.tile.n == 0 {
        return Err(Skip::InvalidConfig("tile width must be nonzero".to_owned()));
    }
    check_numerics(decode_error_bound(ctxs, params))?;
    let schedule = build_batched_decode_schedule(model, ctxs, params);
    let report = check_decode_schedule(model, ctxs, params, &schedule);
    if report.has_errors() {
        return Err(Skip::Analysis(report.render()));
    }
    Ok(())
}

thread_local! {
    /// One reusable simulator per worker thread. A search prices hundreds of
    /// candidates, and building `Gpu::new(device.clone())` for every one
    /// churns a fresh device spec, L2 model, and timeline per candidate;
    /// instead each worker keeps its `Gpu` and [`Gpu::reset`]s it between
    /// candidates (L2 flushed, timeline cleared) — the exact state a fresh
    /// construction would start from, so pricing stays bit-identical.
    static ORACLE_GPU: RefCell<Option<Gpu>> = const { RefCell::new(None) };
}

fn simulate(device: &DeviceSpec, schedule: &[resoftmax_gpusim::KernelDesc]) -> Result<f64, Skip> {
    ORACLE_GPU.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.as_ref().is_none_or(|gpu| gpu.device() != device) {
            *slot = Some(Gpu::new(device.clone()));
        }
        let gpu = slot.as_mut().expect("just installed");
        gpu.reset();
        gpu.run(schedule).map_err(|e| Skip::Launch(e.to_string()))?;
        Ok(gpu.take_timeline().total_time_s())
    })
}

/// Prices one candidate for one workload: prune through the static gates,
/// then return the simulated end-to-end time in seconds. Deterministic —
/// the simulator is exact and single-candidate evaluation is sequential.
pub fn evaluate(
    model: &ModelConfig,
    device: &DeviceSpec,
    workload: &TuneWorkload,
    params: &RunParams,
) -> Result<f64, Skip> {
    match workload {
        TuneWorkload::Prefill { seq_len, batch } => {
            let params = params.clone().batch(*batch);
            let params = RunParams {
                seq_len: *seq_len,
                ..params
            };
            precheck(model, &params)?;
            simulate(device, &build_schedule(model, &params))
        }
        TuneWorkload::Decode { ctxs } => {
            precheck_decode(model, ctxs, params)?;
            simulate(device, &build_batched_decode_schedule(model, ctxs, params))
        }
    }
}

/// The default (untuned) parameters for a workload bucket — the reference
/// configuration every tuning result is compared against.
pub fn default_params(workload: &TuneWorkload) -> RunParams {
    match workload {
        TuneWorkload::Prefill { seq_len, batch } => RunParams {
            seq_len: *seq_len,
            batch: *batch,
            ..RunParams::default()
        },
        TuneWorkload::Decode { ctxs } => RunParams {
            seq_len: ctxs.iter().copied().max().unwrap_or(1),
            ..RunParams::default()
        },
    }
}

/// Errors the search layer surfaces when even the reference point fails.
pub(crate) fn default_unrunnable(workload: &TuneWorkload, skip: &Skip) -> TuneError {
    TuneError::DefaultUnrunnable {
        workload: workload.label(),
        reason: skip.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_gpusim::KernelCategory;
    use resoftmax_kernels::costs::TileConfig;

    #[test]
    fn buckets_round_up_to_powers_of_two() {
        let w = TuneWorkload::Prefill {
            seq_len: 1000,
            batch: 3,
        };
        assert_eq!(
            w.bucket(),
            TuneWorkload::Prefill {
                seq_len: 1024,
                batch: 4
            }
        );
        let d = TuneWorkload::Decode {
            ctxs: vec![260, 1000, 90],
        };
        assert_eq!(
            d.bucket(),
            TuneWorkload::Decode {
                ctxs: vec![1024; 4]
            }
        );
        // Buckets are fixed points.
        assert_eq!(w.bucket().bucket(), w.bucket());
        assert_eq!(d.bucket().bucket(), d.bucket());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            TuneWorkload::Prefill {
                seq_len: 4096,
                batch: 2
            }
            .label(),
            "prefill/L4096/b2"
        );
        assert_eq!(
            TuneWorkload::Decode {
                ctxs: vec![512, 1024]
            }
            .label(),
            "decode/r2/c1024"
        );
    }

    /// `LEGAL_LS_SPLITS` must agree with the analyzer's parallel rule: a
    /// dense SD schedule with each declared split either passes or fails
    /// `check_schedule` exactly as the constant predicts.
    #[test]
    #[cfg_attr(miri, ignore = "builds full schedules; covered by native runs")]
    fn legal_splits_agree_with_analyzer() {
        use resoftmax_model::SoftmaxStrategy;
        let model = ModelConfig::bert_base();
        for split in [
            ParallelSplit::OutputRows,
            ParallelSplit::RowSegments,
            ParallelSplit::OutputTiles,
            ParallelSplit::ReductionAxis,
        ] {
            let params = RunParams::new(512)
                .strategy(SoftmaxStrategy::Decomposed)
                .ls_split(Some(split));
            let expect_legal = LEGAL_LS_SPLITS.contains(&split);
            if !expect_legal {
                // precheck must reject statically, before a schedule (whose
                // debug assertion would fire) is ever built.
                assert_eq!(
                    precheck(&model, &params),
                    Err(Skip::IllegalSplit(split)),
                    "{split:?}"
                );
                continue;
            }
            assert_eq!(precheck(&model, &params), Ok(()), "{split:?}");
            // And the built schedule carries the override.
            let schedule = resoftmax_model::build_schedule(&model, &params);
            assert!(schedule
                .iter()
                .filter(|k| k.category == KernelCategory::LocalSoftmax)
                .all(|k| k.meta.split == Some(split)));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "builds full schedules; covered by native runs")]
    fn precheck_rejects_with_reasons() {
        let model = ModelConfig::bert_large();
        // Tile width not dividing L.
        let bad_tile = RunParams::new(1000).tile(TileConfig::new(64, 48));
        let e = precheck(&model, &bad_tile).unwrap_err();
        assert!(matches!(e, Skip::InvalidConfig(_)), "{e}");
        // Sparse model + decode workload.
        let e = precheck_decode(&ModelConfig::bigbird_large(), &[512], &RunParams::new(512))
            .unwrap_err();
        assert!(e.to_string().contains("dense"), "{e}");
        // Online fusion has no decode form.
        let e = precheck_decode(
            &ModelConfig::gpt_neo_1_3b(),
            &[512],
            &RunParams::new(512).strategy(SoftmaxStrategy::OnlineFused),
        )
        .unwrap_err();
        assert!(matches!(e, Skip::InvalidConfig(_)), "{e}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn evaluate_prices_legal_candidates() {
        let model = ModelConfig::bert_base();
        let device = DeviceSpec::a100();
        let w = TuneWorkload::Prefill {
            seq_len: 512,
            batch: 1,
        };
        let base = default_params(&w);
        let t = evaluate(&model, &device, &w, &base).unwrap();
        assert!(t > 0.0);
        // Recomposed at the same point must also price, and differ.
        let sdf = base.clone().strategy(SoftmaxStrategy::Recomposed);
        let t2 = evaluate(&model, &device, &w, &sdf).unwrap();
        assert!(t2 > 0.0 && t2 != t);
    }

    /// The numerics gate prunes SDF16 statically where its certificate
    /// fails (wide tiles), and prices it where the certificate holds
    /// (narrow tiles) — never building a schedule for the rejected points.
    #[test]
    #[cfg_attr(miri, ignore = "builds full schedules; covered by native runs")]
    fn numerics_gate_controls_fp16_recomposition() {
        let model = ModelConfig::bert_base();
        let device = DeviceSpec::a100();
        let wide = RunParams::new(4096).strategy(SoftmaxStrategy::RecomposedFp16);
        let e = precheck(&model, &wide).unwrap_err();
        assert!(matches!(e, Skip::Numerics(_)), "{e}");
        let narrow = wide.clone().tile(TileConfig::new(64, 16));
        assert_eq!(precheck(&model, &narrow), Ok(()));
        let w = TuneWorkload::Prefill {
            seq_len: 4096,
            batch: 1,
        };
        assert!(evaluate(&model, &device, &w, &narrow).unwrap() > 0.0);

        // Decode: same gate, taken at the batch's longest context.
        let m = ModelConfig::gpt_neo_1_3b();
        let e = precheck_decode(&m, &[512], &wide).unwrap_err();
        assert!(matches!(e, Skip::Numerics(_)), "{e}");
        assert_eq!(precheck_decode(&m, &[512], &narrow), Ok(()));
    }
}
