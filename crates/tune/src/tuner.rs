//! The [`Tuner`]: search orchestration plus the persisted result cache.
//!
//! A `Tuner` owns a [`SearchSpace`], a [`SearchMode`], and a [`TuneDb`].
//! [`Tuner::tune`] canonicalizes the workload to its cache bucket, answers
//! from the database when the exact question was tuned before (counted on
//! `tune.cache_hits`), and otherwise runs the search and records the result
//! (`tune.cache_misses`). A miss first harvests *cross-device transfer
//! seeds*: cached winners for the same question on other devices, repriced
//! as extra starting points (`tune.transfer_candidates` /
//! `tune.transfer_survivors`) — fleet tuning prices the second device's
//! search from the first device's answer instead of from scratch.
//! [`Tuner::save`] persists the database so the next process starts warm.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams};

use crate::cache::{cache_key, CacheEntry, TuneDb};
use crate::oracle::{default_params, precheck, precheck_decode, TuneWorkload};
use crate::search::{search, SearchMode};
use crate::session_ext::apply_knobs;
use crate::space::SearchSpace;

/// Errors surfaced by tuning.
#[derive(Debug)]
pub enum TuneError {
    /// Even the default configuration fails the legality gates for this
    /// workload, so there is no baseline to improve on.
    DefaultUnrunnable {
        /// The workload's [`TuneWorkload::label`].
        workload: String,
        /// The gate's rejection reason.
        reason: String,
    },
    /// The tuning database could not be read or written.
    Io(io::Error),
    /// Session construction or validation failed.
    Model(resoftmax_model::Error),
}

impl core::fmt::Display for TuneError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TuneError::DefaultUnrunnable { workload, reason } => {
                write!(
                    f,
                    "default configuration unrunnable for {workload}: {reason}"
                )
            }
            TuneError::Io(e) => write!(f, "tuning cache I/O failed: {e}"),
            TuneError::Model(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Io(e) => Some(e),
            TuneError::Model(e) => Some(e),
            TuneError::DefaultUnrunnable { .. } => None,
        }
    }
}

impl From<io::Error> for TuneError {
    fn from(e: io::Error) -> Self {
        TuneError::Io(e)
    }
}

impl From<resoftmax_model::Error> for TuneError {
    fn from(e: resoftmax_model::Error) -> Self {
        TuneError::Model(e)
    }
}

/// One tuning answer: the winning configuration and the comparison that
/// justified it. `params` carries the bucket's representative dimensions;
/// callers apply the *knobs* (strategy, tile, LS split) to their own
/// workload, which is what [`crate::SessionTuneExt`] and the serve planner do.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuned {
    /// The tuned run parameters.
    pub params: RunParams,
    /// Simulated time of the tuned schedule, seconds.
    pub cost_s: f64,
    /// Simulated time of the default schedule for the same bucket, seconds.
    pub default_cost_s: f64,
    /// Whether the answer came from the persisted cache.
    pub cache_hit: bool,
    /// The cache bucket that was tuned (workload dimensions rounded up to
    /// powers of two).
    pub workload: TuneWorkload,
}

impl Tuned {
    /// Simulated speedup of the tuned schedule over the default (≥ 1.0 by
    /// construction — the default is always a candidate).
    pub fn speedup(&self) -> f64 {
        self.default_cost_s / self.cost_s
    }
}

/// Cost-model-driven schedule autotuner with a persisted result cache.
///
/// Shared-reference tuning (`&self`) is thread-safe: the database sits
/// behind a mutex, and the searches themselves parallelize internally
/// through `resoftmax-parallel`.
#[derive(Debug)]
pub struct Tuner {
    space: SearchSpace,
    mode: SearchMode,
    db: Mutex<TuneDb>,
    path: Option<PathBuf>,
    loaded: usize,
}

impl Tuner {
    /// An in-memory tuner (no persistence).
    pub fn new(space: SearchSpace, mode: SearchMode) -> Self {
        Tuner {
            space,
            mode,
            db: Mutex::new(TuneDb::new()),
            path: None,
            loaded: 0,
        }
    }

    /// A tuner backed by the database file at `path`. A missing file starts
    /// empty; a stale or corrupt one is discarded (see [`TuneDb::load`]).
    /// Call [`Tuner::save`] to persist new results.
    pub fn with_cache(
        space: SearchSpace,
        mode: SearchMode,
        path: impl Into<PathBuf>,
    ) -> Result<Self, TuneError> {
        let path = path.into();
        let db = TuneDb::load(&path)?;
        let loaded = db.entries.len();
        Ok(Tuner {
            space,
            mode,
            db: Mutex::new(db),
            path: Some(path),
            loaded,
        })
    }

    /// The search bounds this tuner explores.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The search mode this tuner runs.
    pub fn mode(&self) -> &SearchMode {
        &self.mode
    }

    /// The database path, when persistent.
    pub fn cache_path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// How many entries the persisted database held at load time (0 for
    /// in-memory tuners) — lets callers distinguish a warm start.
    pub fn loaded_entries(&self) -> usize {
        self.loaded
    }

    /// How many entries the database holds now.
    pub fn entries(&self) -> usize {
        self.db
            .lock()
            .expect("tuner database poisoned")
            .entries
            .len()
    }

    /// Tunes `workload` on `model` × `device`, answering from the cache
    /// when possible. The workload is canonicalized to its power-of-two
    /// bucket first, so nearby workloads share one search.
    ///
    /// # Errors
    ///
    /// [`TuneError::DefaultUnrunnable`] when the default configuration
    /// itself fails the legality gates for this workload.
    pub fn tune(
        &self,
        model: &ModelConfig,
        device: &DeviceSpec,
        workload: &TuneWorkload,
    ) -> Result<Tuned, TuneError> {
        self.tune_with_mode(model, device, workload, &self.mode)
    }

    /// Like [`Tuner::tune`], but searching with `mode` instead of the
    /// tuner's default. The mode fingerprint is part of the cache key, so
    /// answers found under different modes never alias; a caller can e.g.
    /// anneal one expensive long-tail bucket while everything else stays on
    /// the tuner's exhaustive default.
    ///
    /// # Errors
    ///
    /// [`TuneError::DefaultUnrunnable`] when the default configuration
    /// itself fails the legality gates for this workload.
    pub fn tune_with_mode(
        &self,
        model: &ModelConfig,
        device: &DeviceSpec,
        workload: &TuneWorkload,
        mode: &SearchMode,
    ) -> Result<Tuned, TuneError> {
        let bucket = workload.bucket();
        let base = default_params(&bucket);
        let key = cache_key(model, device, &base.profile, &self.space, mode, &bucket);

        if let Some(entry) = self
            .db
            .lock()
            .expect("tuner database poisoned")
            .entries
            .get(&key)
        {
            resoftmax_obs::counter("tune.cache_hits").incr();
            return Ok(Tuned {
                params: entry.params.clone(),
                cost_s: entry.cost_s,
                default_cost_s: entry.default_cost_s,
                cache_hit: true,
                workload: bucket,
            });
        }
        resoftmax_obs::counter("tune.cache_misses").incr();

        let seeds = self.transfer_seeds(model, &bucket, &base, &key);
        let outcome = search(model, device, &bucket, &self.space, mode, &base, &seeds)?;
        self.db
            .lock()
            .expect("tuner database poisoned")
            .entries
            .insert(
                key,
                CacheEntry {
                    params: outcome.best.clone(),
                    cost_s: outcome.best_cost_s,
                    default_cost_s: outcome.default_cost_s,
                    device: device.name.clone(),
                },
            );
        Ok(Tuned {
            params: outcome.best,
            cost_s: outcome.best_cost_s,
            default_cost_s: outcome.default_cost_s,
            cache_hit: false,
            workload: bucket,
        })
    }

    /// Harvests cross-device transfer seeds for a cache miss: cached
    /// winners for the same question on other devices (same model, profile,
    /// workload bucket, space, and mode — only the `dev=` key segment
    /// differs), with this bucket's knobs applied and the static gates
    /// rerun. Every harvested winner counts on `tune.transfer_candidates`;
    /// those surviving the precheck count on `tune.transfer_survivors` and
    /// seed the search (see [`search`] for how each mode consumes them).
    /// Deduplicated in key order, so the seed list is deterministic.
    fn transfer_seeds(
        &self,
        model: &ModelConfig,
        bucket: &TuneWorkload,
        base: &RunParams,
        key: &str,
    ) -> Vec<RunParams> {
        let mut foreign: Vec<RunParams> = Vec::new();
        for (_, e) in self
            .db
            .lock()
            .expect("tuner database poisoned")
            .foreign_winners(key)
        {
            let candidate = apply_knobs(base, &e.params);
            if !foreign.contains(&candidate) {
                foreign.push(candidate);
            }
        }
        let mut seeds = Vec::new();
        for candidate in foreign {
            resoftmax_obs::counter("tune.transfer_candidates").incr();
            let survives = match bucket {
                TuneWorkload::Prefill { .. } => precheck(model, &candidate).is_ok(),
                TuneWorkload::Decode { ctxs } => precheck_decode(model, ctxs, &candidate).is_ok(),
            };
            if survives {
                resoftmax_obs::counter("tune.transfer_survivors").incr();
                seeds.push(candidate);
            }
        }
        seeds
    }

    /// Persists the database to the path given at construction. A no-op for
    /// in-memory tuners.
    pub fn save(&self) -> Result<(), TuneError> {
        if let Some(path) = &self.path {
            self.db
                .lock()
                .expect("tuner database poisoned")
                .save(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn tune_caches_by_bucket() {
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let model = ModelConfig::bert_base();
        let device = DeviceSpec::a100();
        let w = TuneWorkload::Prefill {
            seq_len: 512,
            batch: 1,
        };
        let first = tuner.tune(&model, &device, &w).unwrap();
        assert!(!first.cache_hit);
        assert!(first.speedup() >= 1.0);
        // Same bucket (500 rounds up to 512) → cache hit, same answer.
        let near = TuneWorkload::Prefill {
            seq_len: 500,
            batch: 1,
        };
        let second = tuner.tune(&model, &device, &near).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.params, first.params);
        assert_eq!(second.cost_s, first.cost_s);
        assert_eq!(tuner.entries(), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn default_unrunnable_surfaces() {
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        // A sparse model has no decode cost model: even the default decode
        // configuration fails the gates.
        let e = tuner
            .tune(
                &ModelConfig::bigbird_large(),
                &DeviceSpec::a100(),
                &TuneWorkload::Decode { ctxs: vec![512] },
            )
            .unwrap_err();
        assert!(matches!(e, TuneError::DefaultUnrunnable { .. }), "{e}");
    }
}
