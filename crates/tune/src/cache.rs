//! The persisted tuning database.
//!
//! A flat JSON file mapping cache keys to tuned configurations. Keys are
//! human-readable strings encoding everything the result depends on — the
//! model's architectural fingerprint, the device, the library profile, the
//! workload bucket, and hashes of the search-space bounds and search mode —
//! so any drift in the question invalidates the answer instead of silently
//! reusing it. The file carries a format version; loading a file written by
//! a different version discards it (counted on
//! `tune.cache_discarded`) rather than guessing at migration.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{LibraryProfile, ModelConfig, RunParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::oracle::TuneWorkload;
use crate::search::SearchMode;
use crate::space::SearchSpace;

/// Format version of the persisted database. Bump on any change to the key
/// derivation or entry layout. v2: `RunParams` grew the `SDF16` strategy
/// (fp16 LS accumulation) and the oracle a fourth (numeric-certification)
/// gate — results tuned without it are not comparable.
pub const CACHE_VERSION: u32 = 2;

/// One tuned result: the winning configuration and both sides of the
/// comparison that justified it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The tuned run parameters (for the bucket's representative workload).
    pub params: RunParams,
    /// Simulated time of the tuned schedule, seconds.
    pub cost_s: f64,
    /// Simulated time of the default ([`RunParams::default`]-derived)
    /// schedule for the same workload, seconds.
    pub default_cost_s: f64,
}

/// The tuning database: versioned, ordered (deterministic serialization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneDb {
    /// Format version ([`CACHE_VERSION`] when written by this build).
    pub version: u32,
    /// Tuned entries by cache key.
    pub entries: BTreeMap<String, CacheEntry>,
}

impl Default for TuneDb {
    fn default() -> Self {
        Self::new()
    }
}

impl TuneDb {
    /// An empty database at the current version.
    pub fn new() -> Self {
        TuneDb {
            version: CACHE_VERSION,
            entries: BTreeMap::new(),
        }
    }

    /// Loads a database from `path`. A missing file yields an empty
    /// database; an unreadable, unparsable, or version-mismatched file is
    /// discarded (empty database, `tune.cache_discarded` incremented) so a
    /// stale cache can never poison tuning results.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Self::new()),
            Err(e) => return Err(e),
        };
        match serde_json::from_str::<TuneDb>(&text) {
            Ok(db) if db.version == CACHE_VERSION => Ok(db),
            _ => {
                resoftmax_obs::counter("tune.cache_discarded").incr();
                Ok(Self::new())
            }
        }
    }

    /// Writes the database to `path` as pretty JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("tuning database serializes");
        std::fs::write(path, format!("{json}\n"))
    }
}

/// FNV-1a 64-bit hash rendered as fixed-width hex — used to keep the
/// search-space and mode components of cache keys short and stable without
/// pulling in a hashing dependency.
pub fn fnv1a(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Derives the cache key for one tuning question. Everything that can
/// change the answer is in the key: model architecture, device, library
/// profile (with its overhead factors), the workload *bucket*, and the
/// fingerprints of the search bounds and mode.
pub fn cache_key(
    model: &ModelConfig,
    device: &DeviceSpec,
    profile: &LibraryProfile,
    space: &SearchSpace,
    mode: &SearchMode,
    bucket: &TuneWorkload,
) -> String {
    let attn = fnv1a(format!("{:?}", model.attention).as_bytes());
    format!(
        "v{CACHE_VERSION}|model={}/{}l/{}d/{}h/{}ff/attn-{attn}|dev={}|prof={}/{}{}/{}x{}|wl={}|space={}|mode={}",
        model.name,
        model.layers,
        model.d_model,
        model.heads,
        model.d_ff,
        device.name,
        profile.name,
        u8::from(profile.separate_scale_mask),
        u8::from(profile.separate_elementwise),
        profile.softmax_overhead,
        profile.matmul_overhead,
        bucket.label(),
        space.fingerprint(),
        mode.fingerprint(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_model::SoftmaxStrategy;

    fn entry() -> CacheEntry {
        CacheEntry {
            params: RunParams::new(1024).strategy(SoftmaxStrategy::Recomposed),
            cost_s: 0.5,
            default_cost_s: 1.0,
        }
    }

    #[test]
    fn key_distinguishes_every_dimension() {
        let space = SearchSpace::smoke();
        let mode = SearchMode::Exhaustive;
        let bucket = TuneWorkload::Prefill {
            seq_len: 1024,
            batch: 1,
        };
        let prof = LibraryProfile::ours_baseline();
        let base = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &bucket,
        );
        let other_model = cache_key(
            &ModelConfig::gpt_neo_1_3b(),
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &bucket,
        );
        let other_dev = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::t4(),
            &prof,
            &space,
            &mode,
            &bucket,
        );
        let other_space = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::a100(),
            &prof,
            &SearchSpace::paper_default(),
            &mode,
            &bucket,
        );
        let other_wl = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &TuneWorkload::Decode { ctxs: vec![1024] },
        );
        let keys = [&base, &other_model, &other_dev, &other_space, &other_wl];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Same question, same key.
        assert_eq!(
            base,
            cache_key(
                &ModelConfig::bert_large(),
                &DeviceSpec::a100(),
                &prof,
                &space,
                &mode,
                &bucket,
            )
        );
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), "cbf29ce484222325");
        assert_eq!(fnv1a(b"resoftmax"), fnv1a(b"resoftmax"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O is not available under miri isolation")]
    fn db_round_trips_and_rejects_stale_versions() {
        let dir = std::env::temp_dir().join(format!("resoftmax-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        // Missing file → empty db.
        let _ = std::fs::remove_file(&path);
        let db = TuneDb::load(&path).unwrap();
        assert!(db.entries.is_empty());

        // Round trip.
        let mut db = TuneDb::new();
        db.entries.insert("k".to_owned(), entry());
        db.save(&path).unwrap();
        assert_eq!(TuneDb::load(&path).unwrap(), db);

        // Version mismatch → discarded.
        let stale = TuneDb {
            version: CACHE_VERSION + 1,
            ..db.clone()
        };
        stale.save(&path).unwrap();
        assert!(TuneDb::load(&path).unwrap().entries.is_empty());

        // Garbage → discarded, not an error.
        std::fs::write(&path, "not json").unwrap();
        assert!(TuneDb::load(&path).unwrap().entries.is_empty());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
