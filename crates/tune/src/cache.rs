//! The persisted tuning database.
//!
//! A flat JSON file mapping cache keys to tuned configurations. Keys are
//! human-readable strings encoding everything the result depends on — the
//! model's architectural fingerprint, the device, the library profile, the
//! workload bucket, and hashes of the search-space bounds and search mode —
//! so any drift in the question invalidates the answer instead of silently
//! reusing it. The file carries a format version; loading a file written by
//! a different version discards it (counted on
//! `tune.cache_discarded`) rather than guessing at migration.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{LibraryProfile, ModelConfig, RunParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::oracle::TuneWorkload;
use crate::search::SearchMode;
use crate::space::SearchSpace;

/// Format version of the persisted database. Bump on any change to the key
/// derivation or entry layout. v2: `RunParams` grew the `SDF16` strategy
/// (fp16 LS accumulation) and the oracle a fourth (numeric-certification)
/// gate — results tuned without it are not comparable. v3: entries record
/// the device they were tuned on, enabling cross-device winner transfer.
pub const CACHE_VERSION: u32 = 3;

/// One tuned result: the winning configuration and both sides of the
/// comparison that justified it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The tuned run parameters (for the bucket's representative workload).
    pub params: RunParams,
    /// Simulated time of the tuned schedule, seconds.
    pub cost_s: f64,
    /// Simulated time of the default ([`RunParams::default`]-derived)
    /// schedule for the same workload, seconds.
    pub default_cost_s: f64,
    /// Name of the device the result was tuned on (matches the `dev=`
    /// segment of its key) — the provenance label for transferred seeds.
    pub device: String,
}

/// The tuning database: versioned, ordered (deterministic serialization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneDb {
    /// Format version ([`CACHE_VERSION`] when written by this build).
    pub version: u32,
    /// Tuned entries by cache key.
    pub entries: BTreeMap<String, CacheEntry>,
}

impl Default for TuneDb {
    fn default() -> Self {
        Self::new()
    }
}

impl TuneDb {
    /// An empty database at the current version.
    pub fn new() -> Self {
        TuneDb {
            version: CACHE_VERSION,
            entries: BTreeMap::new(),
        }
    }

    /// Loads a database from `path`. A missing file yields an empty
    /// database; an unreadable, unparsable, or version-mismatched file is
    /// discarded (empty database, `tune.cache_discarded` incremented) so a
    /// stale cache can never poison tuning results.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Self::new()),
            Err(e) => return Err(e),
        };
        match serde_json::from_str::<TuneDb>(&text) {
            Ok(db) if db.version == CACHE_VERSION => Ok(db),
            _ => {
                resoftmax_obs::counter("tune.cache_discarded").incr();
                Ok(Self::new())
            }
        }
    }

    /// Writes the database to `path` as pretty JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("tuning database serializes");
        std::fs::write(path, format!("{json}\n"))
    }

    /// Cached winners for the *same question on a different device*: every
    /// entry whose key matches `key` in all segments except `dev=`. These
    /// are the transfer seeds a cache miss harvests — a schedule that won on
    /// one device is a strong starting hypothesis on another, and because
    /// seeds only ever *join* a search (they never replace it), a bad
    /// transfer costs one extra pricing, not a wrong answer.
    pub fn foreign_winners(&self, key: &str) -> Vec<(&String, &CacheEntry)> {
        let Some(agnostic) = device_agnostic_key(key) else {
            return Vec::new();
        };
        self.entries
            .iter()
            .filter(|(k, _)| {
                k.as_str() != key && device_agnostic_key(k).as_deref() == Some(&*agnostic)
            })
            .collect()
    }
}

/// Strips the `dev=<name>` segment from a cache key, leaving the
/// device-independent question. Returns `None` for keys without one (which
/// therefore never participate in transfer).
fn device_agnostic_key(key: &str) -> Option<String> {
    let start = key.find("|dev=")?;
    let rest = &key[start + "|dev=".len()..];
    let end = rest.find('|')?;
    Some(format!("{}{}", &key[..start], &rest[end..]))
}

/// FNV-1a 64-bit hash rendered as fixed-width hex — used to keep the
/// search-space and mode components of cache keys short and stable without
/// pulling in a hashing dependency.
pub fn fnv1a(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Derives the cache key for one tuning question. Everything that can
/// change the answer is in the key: model architecture, device, library
/// profile (with its overhead factors), the workload *bucket*, and the
/// fingerprints of the search bounds and mode.
pub fn cache_key(
    model: &ModelConfig,
    device: &DeviceSpec,
    profile: &LibraryProfile,
    space: &SearchSpace,
    mode: &SearchMode,
    bucket: &TuneWorkload,
) -> String {
    let attn = fnv1a(format!("{:?}", model.attention).as_bytes());
    format!(
        "v{CACHE_VERSION}|model={}/{}l/{}d/{}h/{}ff/attn-{attn}|dev={}|prof={}/{}{}/{}x{}|wl={}|space={}|mode={}",
        model.name,
        model.layers,
        model.d_model,
        model.heads,
        model.d_ff,
        device.name,
        profile.name,
        u8::from(profile.separate_scale_mask),
        u8::from(profile.separate_elementwise),
        profile.softmax_overhead,
        profile.matmul_overhead,
        bucket.label(),
        space.fingerprint(),
        mode.fingerprint(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_model::SoftmaxStrategy;

    fn entry() -> CacheEntry {
        CacheEntry {
            params: RunParams::new(1024).strategy(SoftmaxStrategy::Recomposed),
            cost_s: 0.5,
            default_cost_s: 1.0,
            device: "a100".to_owned(),
        }
    }

    #[test]
    fn key_distinguishes_every_dimension() {
        let space = SearchSpace::smoke();
        let mode = SearchMode::Exhaustive;
        let bucket = TuneWorkload::Prefill {
            seq_len: 1024,
            batch: 1,
        };
        let prof = LibraryProfile::ours_baseline();
        let base = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &bucket,
        );
        let other_model = cache_key(
            &ModelConfig::gpt_neo_1_3b(),
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &bucket,
        );
        let other_dev = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::t4(),
            &prof,
            &space,
            &mode,
            &bucket,
        );
        let other_space = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::a100(),
            &prof,
            &SearchSpace::paper_default(),
            &mode,
            &bucket,
        );
        let other_wl = cache_key(
            &ModelConfig::bert_large(),
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &TuneWorkload::Decode { ctxs: vec![1024] },
        );
        let keys = [&base, &other_model, &other_dev, &other_space, &other_wl];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Same question, same key.
        assert_eq!(
            base,
            cache_key(
                &ModelConfig::bert_large(),
                &DeviceSpec::a100(),
                &prof,
                &space,
                &mode,
                &bucket,
            )
        );
    }

    /// `foreign_winners` must return exactly the entries that answer the
    /// same question on another device — not the querying key itself, and
    /// not entries differing in any non-device segment.
    #[test]
    fn foreign_winners_match_on_everything_but_device() {
        let space = SearchSpace::smoke();
        let mode = SearchMode::Exhaustive;
        let bucket = TuneWorkload::Prefill {
            seq_len: 1024,
            batch: 1,
        };
        let prof = LibraryProfile::ours_baseline();
        let model = ModelConfig::bert_large();
        let on = |dev: &DeviceSpec| cache_key(&model, dev, &prof, &space, &mode, &bucket);
        let t4_key = on(&DeviceSpec::t4());
        let a100_key = on(&DeviceSpec::a100());
        let other_wl = cache_key(
            &model,
            &DeviceSpec::a100(),
            &prof,
            &space,
            &mode,
            &TuneWorkload::Prefill {
                seq_len: 2048,
                batch: 1,
            },
        );

        let mut db = TuneDb::new();
        db.entries.insert(t4_key.clone(), entry());
        db.entries.insert(a100_key.clone(), entry());
        db.entries.insert(other_wl, entry());

        let winners = db.foreign_winners(&t4_key);
        assert_eq!(winners.len(), 1, "exactly the a100 twin transfers");
        assert_eq!(winners[0].0, &a100_key);
        // A key with no dev= segment participates in nothing.
        assert!(db.foreign_winners("no-device-segment").is_empty());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), "cbf29ce484222325");
        assert_eq!(fnv1a(b"resoftmax"), fnv1a(b"resoftmax"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    #[cfg_attr(miri, ignore = "file I/O is not available under miri isolation")]
    fn db_round_trips_and_rejects_stale_versions() {
        let dir = std::env::temp_dir().join(format!("resoftmax-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        // Missing file → empty db.
        let _ = std::fs::remove_file(&path);
        let db = TuneDb::load(&path).unwrap();
        assert!(db.entries.is_empty());

        // Round trip.
        let mut db = TuneDb::new();
        db.entries.insert("k".to_owned(), entry());
        db.save(&path).unwrap();
        assert_eq!(TuneDb::load(&path).unwrap(), db);

        // Version mismatch → discarded.
        let stale = TuneDb {
            version: CACHE_VERSION + 1,
            ..db.clone()
        };
        stale.save(&path).unwrap();
        assert!(TuneDb::load(&path).unwrap().entries.is_empty());

        // Garbage → discarded, not an error.
        std::fs::write(&path, "not json").unwrap();
        assert!(TuneDb::load(&path).unwrap().entries.is_empty());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
