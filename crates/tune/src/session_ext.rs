//! Session integration: extension traits that retune an existing
//! [`Session`] or build one directly from a [`Tuner`].
//!
//! `resoftmax-model` cannot depend on this crate (the tuner sits above the
//! model layer), so the integration is a pair of extension traits: bring
//! [`SessionTuneExt`] / [`SessionBuilderTuneExt`] into scope and every
//! session grows a `.tuned(..)`.
//!
//! Only the schedule *knobs* transfer from the tuning result — strategy,
//! tile, and LS split; the session keeps its own workload dimensions and
//! library profile. Because the tuner optimizes the workload's power-of-two
//! *bucket*, a tuned knob can be illegal for the exact workload (a tile
//! width that divides the bucket but not the real sequence length). Those
//! cases fall back to the session's original parameters and are counted on
//! `tune.fallbacks` — tuning never turns a runnable session into a broken
//! one.

use resoftmax_model::{RunParams, Session, SessionBuilder};

use crate::oracle::{precheck, TuneWorkload};
use crate::tuner::{TuneError, Tuner};

/// Copies the tuned schedule knobs onto `base`, keeping its workload
/// dimensions and profile.
pub(crate) fn apply_knobs(base: &RunParams, tuned: &RunParams) -> RunParams {
    base.clone()
        .strategy(tuned.strategy)
        .tile(tuned.tile)
        .ls_split(tuned.ls_split)
}

/// Adds [`tuned`](SessionTuneExt::tuned) to [`Session`].
pub trait SessionTuneExt {
    /// Returns a new session with this session's model, device, and
    /// workload, reconfigured with tuned schedule knobs. Falls back to the
    /// original parameters (counted on `tune.fallbacks`) when the tuned
    /// knobs do not transfer to the exact workload.
    ///
    /// # Errors
    ///
    /// [`TuneError::DefaultUnrunnable`] when even the default configuration
    /// fails tuning's legality gates; [`TuneError::Model`] if the rebuilt
    /// session fails validation (not expected after a clean precheck).
    fn tuned(&self, tuner: &Tuner) -> Result<Session, TuneError>;
}

impl SessionTuneExt for Session {
    fn tuned(&self, tuner: &Tuner) -> Result<Session, TuneError> {
        let workload = TuneWorkload::Prefill {
            seq_len: self.params().seq_len,
            batch: self.params().batch,
        };
        let result = tuner.tune(self.model(), self.device(), &workload)?;
        let candidate = apply_knobs(self.params(), &result.params);
        let params = if precheck(self.model(), &candidate).is_ok() {
            candidate
        } else {
            resoftmax_obs::counter("tune.fallbacks").incr();
            self.params().clone()
        };
        Ok(Session::builder()
            .model(self.model().clone())
            .device(self.device().clone())
            .params(params)
            .build()?)
    }
}

/// Adds [`tuned`](SessionBuilderTuneExt::tuned) to [`SessionBuilder`].
pub trait SessionBuilderTuneExt {
    /// Like [`SessionBuilder::build`], then retunes the resulting session
    /// through `tuner` — `Session::builder()...tuned(&tuner)?` is the
    /// one-line way to get a tuned session.
    ///
    /// # Errors
    ///
    /// [`TuneError::Model`] if the builder itself fails validation, plus
    /// everything [`SessionTuneExt::tuned`] can return.
    fn tuned(self, tuner: &Tuner) -> Result<Session, TuneError>;
}

impl SessionBuilderTuneExt for SessionBuilder {
    fn tuned(self, tuner: &Tuner) -> Result<Session, TuneError> {
        self.build()?.tuned(tuner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchMode;
    use crate::space::SearchSpace;
    use resoftmax_gpusim::DeviceSpec;
    use resoftmax_model::ModelConfig;

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn tuned_session_is_no_slower() {
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let session = Session::builder()
            .model(ModelConfig::bert_base())
            .device(DeviceSpec::a100())
            .params(RunParams::new(512))
            .build()
            .unwrap();
        let baseline = session.run().unwrap().total_time_s();
        let tuned = session.tuned(&tuner).unwrap();
        assert!(tuned.run().unwrap().total_time_s() <= baseline);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn builder_tuned_matches_session_tuned() {
        let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
        let a = Session::builder()
            .model(ModelConfig::bert_base())
            .params(RunParams::new(512))
            .tuned(&tuner)
            .unwrap();
        let b = Session::builder()
            .model(ModelConfig::bert_base())
            .params(RunParams::new(512))
            .build()
            .unwrap()
            .tuned(&tuner)
            .unwrap();
        assert_eq!(a.params(), b.params());
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn illegal_transfer_falls_back() {
        // seq_len 96 buckets to 128. With the space pinned to 64-wide tiles,
        // every tuning winner divides the bucket (64 | 128) but not the real
        // sequence (64 ∤ 96) — the knob transfer must fall back to the
        // session's own parameters instead of producing a broken session.
        let space = SearchSpace {
            tile_ns: vec![64],
            ..SearchSpace::smoke()
        };
        let tuner = Tuner::new(space, SearchMode::Exhaustive);
        let session = Session::builder()
            .model(ModelConfig::bert_base())
            .params(RunParams::new(96).tile(resoftmax_kernels::costs::TileConfig::new(64, 32)))
            .build()
            .unwrap();
        let before = resoftmax_obs::counter("tune.fallbacks").get();
        let tuned = session.tuned(&tuner).unwrap();
        assert!(resoftmax_obs::counter("tune.fallbacks").get() > before);
        assert_eq!(tuned.params(), session.params());
        tuned.run().unwrap();
    }
}
