//! Search drivers over the knob space.
//!
//! Two modes share the oracle and the determinism contract:
//!
//! * **Exhaustive** — every candidate within bounds is priced. The
//!   candidate list order is fixed, evaluation fans out through
//!   `resoftmax-parallel`'s order-preserving `parallel_map`, and the
//!   reduction is an index-ordered argmin with ties to the earlier
//!   candidate — so the result is bit-identical at any worker-thread count.
//! * **Annealed** — a seeded simulated-annealing walk for spaces too large
//!   to sweep. All randomness comes from one `ChaCha8Rng` driven serially
//!   on the caller's thread (proposal generation and the acceptance draw);
//!   only the pricing of each round's proposal batch runs in parallel, and
//!   its results are reduced in proposal order. Same seed → same walk →
//!   same answer, at any thread count.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use resoftmax_gpusim::DeviceSpec;
use resoftmax_kernels::costs::TileConfig;
use resoftmax_model::{ModelConfig, RunParams};
use serde::{Deserialize, Serialize};

use crate::oracle::{default_unrunnable, evaluate, Skip, TuneWorkload};
use crate::space::{has_standalone_ls, SearchSpace};
use crate::TuneError;

/// How the tuner explores the space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchMode {
    /// Price every candidate within the bounds.
    Exhaustive,
    /// Seeded simulated annealing: `rounds` rounds of `proposals` parallel
    /// neighbor evaluations each, walking from the default configuration.
    Annealed {
        /// ChaCha seed; the entire walk is a pure function of it.
        seed: u64,
        /// Annealing rounds.
        rounds: usize,
        /// Neighbor proposals priced per round (in parallel).
        proposals: usize,
    },
}

impl SearchMode {
    /// Annealing with the default budget (12 rounds × 8 proposals).
    pub fn annealed(seed: u64) -> Self {
        SearchMode::Annealed {
            seed,
            rounds: 12,
            proposals: 8,
        }
    }

    /// Stable fingerprint for cache keys.
    pub fn fingerprint(&self) -> String {
        crate::cache::fnv1a(
            serde_json::to_string(self)
                .expect("search mode serializes")
                .as_bytes(),
        )
    }
}

/// The result of one search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The winning configuration.
    pub best: RunParams,
    /// Its simulated time, seconds.
    pub best_cost_s: f64,
    /// The default configuration's simulated time, seconds.
    pub default_cost_s: f64,
    /// Candidates successfully priced.
    pub evaluated: usize,
    /// Candidates pruned by the legality gates.
    pub pruned: usize,
}

/// Prices `candidates` in parallel (order-preserving) and returns the
/// per-candidate outcomes in input order.
fn price_all(
    model: &ModelConfig,
    device: &DeviceSpec,
    workload: &TuneWorkload,
    candidates: &[RunParams],
) -> Vec<Result<f64, Skip>> {
    let results =
        resoftmax_parallel::parallel_map(candidates, |_, p| evaluate(model, device, workload, p));
    let ok = results.iter().filter(|r| r.is_ok()).count();
    resoftmax_obs::counter("tune.candidates_evaluated").add(ok as u64);
    resoftmax_obs::counter("tune.candidates_pruned").add((results.len() - ok) as u64);
    results
}

/// Index-ordered argmin: the lowest cost wins, ties go to the earlier
/// candidate, so the reduction is independent of evaluation concurrency.
fn argmin(costs: &[Result<f64, Skip>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in costs.iter().enumerate() {
        if let Ok(c) = c {
            if best.is_none_or(|(_, b)| *c < b) {
                best = Some((i, *c));
            }
        }
    }
    best
}

/// Runs one search for `workload`, starting from (and always including)
/// `base` — so the outcome can never be slower than the default schedule.
///
/// `seeds` are extra starting points beyond the default — typically winners
/// transferred from another device's cached result for the same question.
/// Exhaustive search appends them to the enumeration (deduplicated, so
/// seeds already in the space change nothing); annealed search prices them
/// alongside `base` before round 0 and starts the walk from the cheapest.
/// An empty slice reproduces the unseeded search bit for bit.
///
/// # Errors
///
/// [`TuneError::DefaultUnrunnable`] when the default configuration itself
/// fails the gates (the comparison baseline would not exist).
pub fn search(
    model: &ModelConfig,
    device: &DeviceSpec,
    workload: &TuneWorkload,
    space: &SearchSpace,
    mode: &SearchMode,
    base: &RunParams,
    seeds: &[RunParams],
) -> Result<SearchOutcome, TuneError> {
    let _span = resoftmax_obs::span("tune.search", "tune");
    match mode {
        SearchMode::Exhaustive => exhaustive(model, device, workload, space, base, seeds),
        SearchMode::Annealed {
            seed,
            rounds,
            proposals,
        } => annealed(
            model, device, workload, space, base, seeds, *seed, *rounds, *proposals,
        ),
    }
}

fn exhaustive(
    model: &ModelConfig,
    device: &DeviceSpec,
    workload: &TuneWorkload,
    space: &SearchSpace,
    base: &RunParams,
    seeds: &[RunParams],
) -> Result<SearchOutcome, TuneError> {
    let mut candidates = space.candidates(base);
    for seed in seeds {
        if !candidates.contains(seed) {
            candidates.push(seed.clone());
        }
    }
    let costs = price_all(model, device, workload, &candidates);
    let default_cost_s = match &costs[0] {
        Ok(c) => *c,
        Err(skip) => return Err(default_unrunnable(workload, skip)),
    };
    let (i, best_cost_s) = argmin(&costs).expect("candidate 0 priced");
    let evaluated = costs.iter().filter(|c| c.is_ok()).count();
    Ok(SearchOutcome {
        best: candidates[i].clone(),
        best_cost_s,
        default_cost_s,
        evaluated,
        pruned: costs.len() - evaluated,
    })
}

/// One random single-knob mutation of `current`, drawn from the space.
fn mutate(current: &RunParams, space: &SearchSpace, rng: &mut ChaCha8Rng) -> RunParams {
    let mut next = current.clone();
    match rng.gen_range(0usize..4) {
        0 => {
            let m = space.tile_ms[rng.gen_range(0..space.tile_ms.len())];
            next.tile = TileConfig::new(m, next.tile.n);
        }
        1 => {
            let n = space.tile_ns[rng.gen_range(0..space.tile_ns.len())];
            next.tile = TileConfig::new(next.tile.m, n);
        }
        2 => {
            next.strategy = space.strategies[rng.gen_range(0..space.strategies.len())];
        }
        _ => {
            next.ls_split = space.ls_splits[rng.gen_range(0..space.ls_splits.len())];
        }
    }
    // Keep the canonical form the exhaustive enumeration uses: a split
    // override is meaningful only where a standalone LS kernel exists.
    if !has_standalone_ls(next.strategy, &next.profile) {
        next.ls_split = None;
    }
    next
}

#[allow(clippy::too_many_arguments)]
fn annealed(
    model: &ModelConfig,
    device: &DeviceSpec,
    workload: &TuneWorkload,
    space: &SearchSpace,
    base: &RunParams,
    seeds: &[RunParams],
    seed: u64,
    rounds: usize,
    proposals: usize,
) -> Result<SearchOutcome, TuneError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Round 0 prices the default plus any transferred seeds in one batch;
    // the walk starts from the cheapest survivor. With no seeds this is
    // exactly the old single-candidate pricing of `base`, and the RNG
    // stream is untouched either way — unseeded runs reproduce bit for bit.
    let mut starters = vec![base.clone()];
    starters.extend(seeds.iter().cloned());
    let costs = price_all(model, device, workload, &starters);
    let default_cost_s = match &costs[0] {
        Ok(c) => *c,
        Err(skip) => return Err(default_unrunnable(workload, skip)),
    };
    let (start, start_cost) = argmin(&costs).expect("candidate 0 priced");
    let (mut current, mut current_cost) = (starters[start].clone(), start_cost);
    let (mut best, mut best_cost) = (starters[start].clone(), start_cost);
    let mut evaluated = costs.iter().filter(|c| c.is_ok()).count();
    let mut pruned = costs.iter().filter(|c| c.is_err()).count();

    for round in 0..rounds {
        // Serial proposal draws, parallel pricing, index-ordered reduction.
        let batch: Vec<RunParams> = (0..proposals)
            .map(|_| mutate(&current, space, &mut rng))
            .collect();
        let costs = price_all(model, device, workload, &batch);
        evaluated += costs.iter().filter(|c| c.is_ok()).count();
        pruned += costs.iter().filter(|c| c.is_err()).count();
        let Some((i, cost)) = argmin(&costs) else {
            continue; // whole batch pruned; resample from the same state
        };
        if cost < best_cost {
            (best, best_cost) = (batch[i].clone(), cost);
        }
        // Metropolis acceptance on relative regression, cooling
        // geometrically. The draw happens every round so the RNG stream
        // depends only on the seed and round count.
        let temp = 0.25 * 0.7f64.powi(round as i32);
        let u: f64 = rng.gen_range(0.0..1.0);
        let accept =
            cost <= current_cost || (temp > 0.0 && u < (-(cost / current_cost - 1.0) / temp).exp());
        if accept {
            (current, current_cost) = (batch[i].clone(), cost);
        }
    }
    Ok(SearchOutcome {
        best,
        best_cost_s: best_cost,
        default_cost_s,
        evaluated,
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_fingerprints_differ() {
        assert_ne!(
            SearchMode::Exhaustive.fingerprint(),
            SearchMode::annealed(0).fingerprint()
        );
        assert_ne!(
            SearchMode::annealed(0).fingerprint(),
            SearchMode::annealed(1).fingerprint()
        );
    }

    #[test]
    fn argmin_prefers_earlier_on_ties() {
        let costs: Vec<Result<f64, Skip>> = vec![
            Err(Skip::InvalidConfig("x".into())),
            Ok(2.0),
            Ok(1.0),
            Ok(1.0),
        ];
        assert_eq!(argmin(&costs), Some((2, 1.0)));
        assert_eq!(argmin(&[] as &[Result<f64, Skip>]), None);
    }

    #[test]
    fn mutate_is_deterministic_and_in_space() {
        let space = SearchSpace::paper_default();
        let base = RunParams::new(1024);
        let walk = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut p = base.clone();
            (0..32)
                .map(|_| {
                    p = mutate(&p, &space, &mut rng);
                    serde_json::to_string(&p).unwrap()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(7), walk(7));
        assert_ne!(walk(7), walk(8));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut p = base.clone();
        for _ in 0..64 {
            p = mutate(&p, &space, &mut rng);
            assert!(space.tile_ms.contains(&p.tile.m));
            assert!(space.tile_ns.contains(&p.tile.n));
            assert!(space.strategies.contains(&p.strategy));
            assert!(p.ls_split.is_none() || space.ls_splits.contains(&p.ls_split));
        }
    }
}
