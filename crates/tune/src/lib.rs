//! Cost-model-driven schedule autotuner with a persisted tuning cache.
//!
//! The paper fixes one schedule shape per experiment; this crate closes the
//! loop by *searching* the schedule knob space — MatMul tile `(m, n)` (the
//! width doubling as the LS sub-vector length `T`), softmax strategy
//! (baseline / SD / SDF / online-fused), and the standalone-LS
//! [`ParallelSplit`](resoftmax_gpusim::ParallelSplit) — using the
//! [`resoftmax_gpusim`] cost model as the oracle and the
//! `resoftmax-analyzer` legality rules as the gate, so illegal candidates
//! are pruned before a schedule is ever simulated (or even built).
//!
//! The pieces:
//!
//! * [`SearchSpace`] — the knob bounds ([`SearchSpace::paper_default`] /
//!   [`SearchSpace::smoke`]).
//! * [`SearchMode`] — [`Exhaustive`](SearchMode::Exhaustive) within bounds,
//!   or seeded [`Annealed`](SearchMode::Annealed) for larger spaces. Both
//!   are deterministic: evaluation fans out through `resoftmax-parallel`'s
//!   order-preserving map and reduces by enumeration index, so results are
//!   bit-identical at any worker-thread count.
//! * [`Tuner`] — orchestrates searches and caches answers in a versioned
//!   JSON [`TuneDb`], keyed by model × device × profile × workload bucket ×
//!   space/mode fingerprints. Cache traffic shows up on the always-on
//!   counters `tune.cache_hits` / `tune.cache_misses`; a miss seeds its
//!   search with winners cached for the same question on *other* devices
//!   (`tune.transfer_candidates` / `tune.transfer_survivors`).
//! * [`SessionTuneExt`] / [`SessionBuilderTuneExt`] — `.tuned(&tuner)` on a
//!   session or builder.
//! * [`TunedPlanner`] — a [`resoftmax_serve::IterationPlanner`] that serves
//!   every continuous-batching iteration with its tuned schedule.
//!
//! ```
//! use resoftmax_model::{ModelConfig, RunParams, Session};
//! use resoftmax_tune::{SearchMode, SearchSpace, SessionBuilderTuneExt, Tuner};
//!
//! let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
//! let session = Session::builder()
//!     .model(ModelConfig::bert_base())
//!     .params(RunParams::new(512))
//!     .tuned(&tuner)?;
//! let report = session.run()?;
//! assert!(report.total_time_s() > 0.0);
//! # Ok::<(), resoftmax_tune::TuneError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod oracle;
mod search;
mod serve_hook;
mod session_ext;
mod space;
mod tuner;

pub use cache::{cache_key, fnv1a, CacheEntry, TuneDb, CACHE_VERSION};
pub use oracle::{
    default_params, evaluate, precheck, precheck_decode, Skip, TuneWorkload, LEGAL_LS_SPLITS,
};
pub use search::{search, SearchMode, SearchOutcome};
pub use serve_hook::TunedPlanner;
pub use session_ext::{SessionBuilderTuneExt, SessionTuneExt};
pub use space::{has_standalone_ls, SearchSpace};
pub use tuner::{TuneError, Tuned, Tuner};
