//! Incremental re-simulation: with the kernel-pricing cache warm, pricing a
//! single-knob neighbor of an already-priced candidate re-simulates only
//! the kernels that knob actually changes — everything else answers from
//! the cache.
//!
//! Kept in its own (single-test) binary: the assertions read deltas of the
//! process-global pricing-cache statistics, which concurrent tests would
//! perturb.

#![cfg(not(miri))] // end-to-end simulation is too slow under miri

use resoftmax_gpusim::{clear_sim_cache, sim_cache_stats, DeviceSpec};
use resoftmax_model::{RunParams, SoftmaxStrategy};
use resoftmax_tune::{evaluate, TuneWorkload};

#[test]
fn neighbor_candidates_reprice_only_changed_kernels() {
    let model = resoftmax_model::ModelConfig::bert_base();
    let device = DeviceSpec::a100();
    let w = TuneWorkload::Prefill {
        seq_len: 512,
        batch: 1,
    };
    let a = RunParams::new(512);
    // A single-knob neighbor: recomposing the softmax replaces the softmax
    // kernels but leaves the matmul/elementwise kernels untouched.
    let b = a.clone().strategy(SoftmaxStrategy::Decomposed);

    clear_sim_cache();
    let t_a = evaluate(&model, &device, &w, &a).unwrap();
    let s0 = sim_cache_stats();
    assert!(s0.misses > 0, "cold pricing simulates fresh");

    // Re-pricing the identical candidate answers entirely from the cache.
    let t_a2 = evaluate(&model, &device, &w, &a).unwrap();
    assert_eq!(t_a.to_bits(), t_a2.to_bits());
    let s1 = sim_cache_stats();
    assert_eq!(
        s1.misses, s0.misses,
        "an identical candidate must not re-simulate anything"
    );
    assert!(s1.hits > s0.hits);

    // The neighbor re-simulates its changed kernels (fresh misses appear)
    // but answers for every untouched kernel from the cache — strictly
    // fewer fresh simulations than the cold pricing of `a` needed.
    let t_b = evaluate(&model, &device, &w, &b).unwrap();
    assert!(t_b > 0.0);
    let s2 = sim_cache_stats();
    let fresh_b = s2.misses - s1.misses;
    assert!(fresh_b > 0, "the changed softmax kernels really re-price");
    assert!(
        fresh_b < s0.misses,
        "neighbor repriced {fresh_b} kernels fresh; cold pricing needed {}",
        s0.misses
    );
    assert!(
        s2.hits > s1.hits,
        "unchanged kernels must answer from the cache"
    );
    clear_sim_cache();
}
