//! Determinism contract: tuning results are bit-identical across
//! worker-thread counts and across repeated same-seed runs.
//!
//! Serialized-JSON comparison (not float tolerance) on purpose — the claim
//! is bitwise reproducibility, which is what lets the persisted cache and
//! the CI smoke check compare runs with `cmp`.

#![cfg(not(miri))] // end-to-end simulation is too slow under miri

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::ModelConfig;
use resoftmax_tune::{SearchMode, SearchSpace, TuneWorkload, Tuned, Tuner};

fn workloads() -> Vec<TuneWorkload> {
    vec![
        TuneWorkload::Prefill {
            seq_len: 512,
            batch: 1,
        },
        TuneWorkload::Prefill {
            seq_len: 1024,
            batch: 4,
        },
        TuneWorkload::Decode {
            ctxs: vec![700, 300, 1500],
        },
    ]
}

fn run_all(mode: &SearchMode, threads: Option<usize>) -> Vec<String> {
    resoftmax_parallel::set_thread_override(threads);
    let tuner = Tuner::new(SearchSpace::smoke(), mode.clone());
    let model = ModelConfig::bert_base();
    let decode_model = ModelConfig::gpt_neo_1_3b();
    let device = DeviceSpec::a100();
    let rows = workloads()
        .iter()
        .map(|w| {
            let m = if matches!(w, TuneWorkload::Decode { .. }) {
                &decode_model
            } else {
                &model
            };
            let Tuned {
                params,
                cost_s,
                default_cost_s,
                ..
            } = tuner.tune(m, &device, w).unwrap();
            format!(
                "{}|{}|{cost_s:e}|{default_cost_s:e}",
                w.label(),
                serde_json::to_string(&params).unwrap()
            )
        })
        .collect();
    resoftmax_parallel::set_thread_override(None);
    rows
}

#[test]
fn exhaustive_is_bit_identical_across_thread_counts() {
    let one = run_all(&SearchMode::Exhaustive, Some(1));
    let four = run_all(&SearchMode::Exhaustive, Some(4));
    assert_eq!(one, four);
}

#[test]
fn annealed_is_bit_identical_across_thread_counts_and_reruns() {
    let mode = SearchMode::annealed(42);
    let one = run_all(&mode, Some(1));
    let four = run_all(&mode, Some(4));
    assert_eq!(one, four);
    // Same seed, same walk — repeated runs reproduce exactly.
    assert_eq!(run_all(&mode, None), one);
    // A different seed is allowed to (and here does not have to) differ,
    // but must itself be reproducible.
    let other = run_all(&SearchMode::annealed(43), None);
    assert_eq!(run_all(&SearchMode::annealed(43), None), other);
}

/// A warm kernel-pricing cache (populated by an earlier full pass) must
/// reproduce the fresh-pricing rows bit for bit, at 1 and 4 workers. This
/// is the tuning-level face of the simulator cache's bit-identity contract.
#[test]
fn warm_pricing_cache_is_bit_identical_across_workers() {
    let mode = SearchMode::Exhaustive;
    resoftmax_gpusim::set_sim_cache_enabled(Some(false));
    let fresh = run_all(&mode, Some(1));
    resoftmax_gpusim::set_sim_cache_enabled(Some(true));
    let _warm_up = run_all(&mode, Some(1)); // populates the global cache
    let one = run_all(&mode, Some(1));
    let four = run_all(&mode, Some(4));
    resoftmax_gpusim::set_sim_cache_enabled(None);
    assert_eq!(one, fresh, "warm cache diverges from fresh pricing");
    assert_eq!(four, fresh, "warm cache diverges at 4 workers");
}

#[test]
fn annealed_never_beats_worse_than_default_and_exhaustive_bounds_it() {
    // The annealed walk starts at the default, so it can never return a
    // slower schedule; the exhaustive optimum bounds it from below.
    let model = ModelConfig::bert_base();
    let device = DeviceSpec::a100();
    let w = TuneWorkload::Prefill {
        seq_len: 512,
        batch: 1,
    };
    let exhaustive = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive)
        .tune(&model, &device, &w)
        .unwrap();
    let annealed = Tuner::new(SearchSpace::smoke(), SearchMode::annealed(7))
        .tune(&model, &device, &w)
        .unwrap();
    assert!(annealed.cost_s <= annealed.default_cost_s);
    assert!(exhaustive.cost_s <= annealed.cost_s);
}
