//! Property-based tuner contracts (ISSUE acceptance): for arbitrary
//! model/workload/seed combinations, every tuner-returned schedule analyzes
//! clean and never simulates slower than the default parameters.

#![cfg(not(miri))] // end-to-end simulation is too slow under miri

use proptest::prelude::*;
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::ModelConfig;
use resoftmax_tune::{
    evaluate, precheck, precheck_decode, SearchMode, SearchSpace, TuneWorkload, Tuner,
};

fn any_dense_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::bert_base()),
        Just(ModelConfig::bert_large()),
        Just(ModelConfig::gpt_neo_1_3b()),
    ]
}

fn any_workload() -> impl Strategy<Value = TuneWorkload> {
    prop_oneof![
        ((1usize..9), (1usize..5)).prop_map(|(k, b)| TuneWorkload::Prefill {
            seq_len: k * 128,
            batch: b,
        }),
        proptest::collection::vec(64usize..2048, 1..5)
            .prop_map(|ctxs| TuneWorkload::Decode { ctxs }),
    ]
}

fn any_mode() -> impl Strategy<Value = SearchMode> {
    prop_oneof![
        Just(SearchMode::Exhaustive),
        (0u64..1024).prop_map(|seed| SearchMode::Annealed {
            seed,
            rounds: 4,
            proposals: 4,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The ISSUE's tuner invariant: whatever the workload and search mode,
    /// the returned schedule passes static analysis for its bucket and its
    /// recorded cost is (a) reproducible and (b) ≤ the default's.
    #[test]
    fn tuned_schedules_analyze_clean_and_never_lose(
        model in any_dense_model(),
        workload in any_workload(),
        mode in any_mode(),
    ) {
        let device = DeviceSpec::a100();
        let tuner = Tuner::new(SearchSpace::smoke(), mode);
        let tuned = tuner.tune(&model, &device, &workload).unwrap();

        prop_assert!(tuned.cost_s <= tuned.default_cost_s,
            "{}: tuned {} > default {}", workload.label(), tuned.cost_s, tuned.default_cost_s);

        match &tuned.workload {
            TuneWorkload::Prefill { .. } => prop_assert!(precheck(&model, &tuned.params).is_ok()),
            TuneWorkload::Decode { ctxs } => {
                prop_assert!(precheck_decode(&model, ctxs, &tuned.params).is_ok());
            }
        }
        // Re-pricing the winner reproduces the recorded cost bit-exactly.
        let repriced = evaluate(&model, &device, &tuned.workload, &tuned.params).unwrap();
        prop_assert_eq!(repriced, tuned.cost_s);
    }
}
