//! Cross-device winner transfer: a cache miss on one device harvests the
//! winners tuned for the same question on other devices and seeds its own
//! search with them, so fleet tuning prices the second device's search from
//! the first device's answer instead of from scratch.
//!
//! Kept in its own test binary: the assertions read the process-global
//! `tune.transfer_*` counters.

#![cfg(not(miri))] // end-to-end simulation is too slow under miri

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::ModelConfig;
use resoftmax_tune::{evaluate, SearchMode, SearchSpace, TuneWorkload, Tuner};

#[test]
fn t4_search_is_seeded_from_the_cached_a100_winner() {
    let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::annealed(42));
    let model = ModelConfig::bert_base();
    let w = TuneWorkload::Prefill {
        seq_len: 512,
        batch: 1,
    };

    let candidates0 = resoftmax_obs::counter("tune.transfer_candidates").get();
    let a100 = tuner.tune(&model, &DeviceSpec::a100(), &w).unwrap();
    assert_eq!(
        resoftmax_obs::counter("tune.transfer_candidates").get(),
        candidates0,
        "the first device has nothing to transfer from"
    );

    let survivors0 = resoftmax_obs::counter("tune.transfer_survivors").get();
    let t4 = tuner.tune(&model, &DeviceSpec::t4(), &w).unwrap();
    assert!(!t4.cache_hit, "a new device is a genuine miss");
    assert!(
        resoftmax_obs::counter("tune.transfer_candidates").get() > candidates0,
        "the t4 miss must harvest the cached a100 winner"
    );
    assert!(
        resoftmax_obs::counter("tune.transfer_survivors").get() > survivors0,
        "the a100 winner passes the device-independent gates, so it survives"
    );

    // The transferred winner joined the search's round 0, so the t4 answer
    // can never be worse than pricing the a100 knobs directly on the t4 —
    // and never worse than the t4 default.
    let transferred_cost = evaluate(&model, &DeviceSpec::t4(), &t4.workload, &a100.params).unwrap();
    assert!(
        t4.cost_s <= transferred_cost,
        "t4 {} > transferred a100 knobs {}",
        t4.cost_s,
        transferred_cost
    );
    assert!(t4.cost_s <= t4.default_cost_s);

    // Re-asking either device answers from the cache without new transfer
    // traffic.
    let candidates1 = resoftmax_obs::counter("tune.transfer_candidates").get();
    assert!(tuner.tune(&model, &DeviceSpec::t4(), &w).unwrap().cache_hit);
    assert!(
        tuner
            .tune(&model, &DeviceSpec::a100(), &w)
            .unwrap()
            .cache_hit
    );
    assert_eq!(
        resoftmax_obs::counter("tune.transfer_candidates").get(),
        candidates1
    );
}
