//! End-to-end tuner contracts: analyzer-clean winners, never-slower
//! guarantee, cache round trips with hit/miss counters, and the serve hook.

#![cfg(not(miri))] // end-to-end simulation is too slow under miri

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams, Session};
use resoftmax_serve::{run_serve, run_serve_with, ServeConfig};
use resoftmax_tune::{
    evaluate, precheck, precheck_decode, SearchMode, SearchSpace, SessionTuneExt, TuneWorkload,
    TunedPlanner, Tuner,
};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("resoftmax-tune-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Every schedule the tuner returns passes the static analyzer and prices
/// no slower than the default configuration — over prefill and decode
/// workloads on dense and (prefill-only) sparse models.
#[test]
fn winners_are_analyzer_clean_and_never_slower() {
    let device = DeviceSpec::a100();
    let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
    let cases: Vec<(ModelConfig, TuneWorkload)> = vec![
        (
            ModelConfig::bert_base(),
            TuneWorkload::Prefill {
                seq_len: 512,
                batch: 1,
            },
        ),
        (
            ModelConfig::bigbird_large(),
            TuneWorkload::Prefill {
                seq_len: 1024,
                batch: 2,
            },
        ),
        (
            ModelConfig::gpt_neo_1_3b(),
            TuneWorkload::Decode {
                ctxs: vec![512, 900, 2000],
            },
        ),
    ];
    for (model, workload) in cases {
        let tuned = tuner.tune(&model, &device, &workload).unwrap();
        assert!(
            tuned.cost_s <= tuned.default_cost_s,
            "{}: tuned {} > default {}",
            workload.label(),
            tuned.cost_s,
            tuned.default_cost_s
        );
        assert!(tuned.speedup() >= 1.0);
        // The winner re-analyzes clean for its bucket.
        match &tuned.workload {
            TuneWorkload::Prefill { .. } => precheck(&model, &tuned.params).unwrap(),
            TuneWorkload::Decode { ctxs } => {
                precheck_decode(&model, ctxs, &tuned.params).unwrap();
            }
        }
        // And re-pricing it reproduces the recorded cost exactly.
        assert_eq!(
            evaluate(&model, &device, &tuned.workload, &tuned.params).unwrap(),
            tuned.cost_s
        );
    }
}

/// The persisted cache round-trips: a second tuner constructed over the
/// saved file answers from the database (cache-hit counter moves, no
/// re-search) with the identical result.
#[test]
fn persisted_cache_round_trips_with_counters() {
    let path = temp_path("roundtrip.json");
    let _ = std::fs::remove_file(&path);
    let model = ModelConfig::bert_base();
    let device = DeviceSpec::a100();
    let w = TuneWorkload::Prefill {
        seq_len: 512,
        batch: 1,
    };

    let first = {
        let tuner = Tuner::with_cache(SearchSpace::smoke(), SearchMode::Exhaustive, &path).unwrap();
        assert_eq!(tuner.loaded_entries(), 0);
        let misses = resoftmax_obs::counter("tune.cache_misses").get();
        let t = tuner.tune(&model, &device, &w).unwrap();
        assert!(!t.cache_hit);
        assert!(resoftmax_obs::counter("tune.cache_misses").get() > misses);
        tuner.save().unwrap();
        t
    };

    let tuner = Tuner::with_cache(SearchSpace::smoke(), SearchMode::Exhaustive, &path).unwrap();
    assert_eq!(tuner.loaded_entries(), 1);
    let hits = resoftmax_obs::counter("tune.cache_hits").get();
    let evals = resoftmax_obs::counter("tune.candidates_evaluated").get();
    let second = tuner.tune(&model, &device, &w).unwrap();
    assert!(second.cache_hit);
    assert!(resoftmax_obs::counter("tune.cache_hits").get() > hits);
    // A cache hit runs no search at all.
    assert_eq!(
        resoftmax_obs::counter("tune.candidates_evaluated").get(),
        evals
    );
    assert_eq!(second.params, first.params);
    assert_eq!(second.cost_s, first.cost_s);
    assert_eq!(second.default_cost_s, first.default_cost_s);
    let _ = std::fs::remove_file(&path);
}

/// A differently-bounded space or mode must not reuse the entry.
#[test]
fn cache_does_not_cross_spaces_or_modes() {
    let path = temp_path("crossspace.json");
    let _ = std::fs::remove_file(&path);
    let model = ModelConfig::bert_base();
    let device = DeviceSpec::a100();
    let w = TuneWorkload::Prefill {
        seq_len: 256,
        batch: 1,
    };
    let tuner = Tuner::with_cache(SearchSpace::smoke(), SearchMode::Exhaustive, &path).unwrap();
    tuner.tune(&model, &device, &w).unwrap();
    tuner.save().unwrap();

    let other = Tuner::with_cache(SearchSpace::smoke(), SearchMode::annealed(1), &path).unwrap();
    assert_eq!(other.loaded_entries(), 1);
    let t = other.tune(&model, &device, &w).unwrap();
    assert!(!t.cache_hit, "a different search mode must re-search");
    let _ = std::fs::remove_file(&path);
}

/// Session integration: `.tuned()` returns a session that runs no slower,
/// and the tuned knobs survive the round trip through the builder.
#[test]
fn tuned_session_runs_no_slower() {
    let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
    let session = Session::builder()
        .model(ModelConfig::bert_large())
        .device(DeviceSpec::a100())
        .params(RunParams::new(1024))
        .build()
        .unwrap();
    let base_t = session.run().unwrap().total_time_s();
    let tuned = session.tuned(&tuner).unwrap();
    let tuned_t = tuned.run().unwrap().total_time_s();
    assert!(tuned_t <= base_t, "tuned {tuned_t} > baseline {base_t}");
}

/// Serve integration: the tuned planner completes the same workload in no
/// more simulated time than the baseline planner, deterministically.
#[test]
fn tuned_serving_is_deterministic_and_no_slower() {
    let model = ModelConfig::gpt_neo_1_3b();
    let device = DeviceSpec::a100();
    let params = RunParams::new(4096);
    let cfg = ServeConfig {
        requests: 5,
        arrival_rate_hz: 64.0,
        prompt_tokens: (64, 160),
        decode_tokens: (4, 10),
        max_batch: 4,
        prefill_chunk: 64,
        ..ServeConfig::default()
    };
    let baseline = run_serve(&model, &device, &params, &cfg).unwrap();

    let tuner = Tuner::new(SearchSpace::smoke(), SearchMode::Exhaustive);
    let planner = TunedPlanner::new(&tuner, &model, &device);
    let a = run_serve_with(&model, &device, &params, &cfg, &planner).unwrap();
    let b = run_serve_with(&model, &device, &params, &cfg, &planner).unwrap();
    assert_eq!(a, b, "tuned serving must be deterministic");
    assert_eq!(a.completed, cfg.requests);
    assert!(a.sim_time_s <= baseline.sim_time_s);
}
