//! Property-based tests of block-sparse layouts, patterns and operations.

use proptest::prelude::*;
use resoftmax_sparse::{
    block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig, BlockLayout, BlockSparseMatrix,
    LongformerConfig, PatternStats,
};
use resoftmax_tensor::{matmul, max_abs_diff, randn_matrix, transpose, Matrix};

fn geometry() -> impl Strategy<Value = (usize, usize)> {
    // (n_blocks, block) with modest element counts
    (1usize..10, 1usize..4).prop_map(|(n, bp)| (n, 1 << (bp + 1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pattern generators always retain the diagonal (every token attends to
    /// itself) and stay within density bounds.
    #[test]
    fn patterns_retain_diagonal((n, block) in geometry(), seed in 0u64..1000) {
        let l = n * block;
        let bb = pattern::bigbird(l, &BigBirdConfig {
            block,
            global_blocks: 1,
            window_blocks: 3,
            random_blocks: 1,
            seed,
        });
        let lf = pattern::longformer(l, &LongformerConfig {
            block,
            window: block * 2,
            global_tokens: block,
        });
        for layout in [&bb, &lf] {
            for i in 0..n {
                prop_assert!(layout.is_set(i, i), "diagonal block ({i},{i}) missing");
            }
            let d = layout.density();
            prop_assert!(d > 0.0 && d <= 1.0);
        }
    }

    /// union is commutative, idempotent, and monotone in density.
    #[test]
    fn union_laws((n, block) in geometry(), seed in 0u64..1000) {
        let l = n * block;
        let a = pattern::sliding_window(l, block, 1);
        let b = pattern::bigbird(l, &BigBirdConfig {
            block, global_blocks: 1, window_blocks: 1, random_blocks: 1, seed,
        });
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&a.union(&a), &a);
        prop_assert!(ab.nnz_blocks() >= a.nnz_blocks().max(b.nnz_blocks()));
        prop_assert!(ab.nnz_blocks() <= a.nnz_blocks() + b.nnz_blocks());
    }

    /// causal() removes exactly the strictly-upper blocks.
    #[test]
    fn causal_law((n, block) in geometry()) {
        let dense = BlockLayout::dense(n * block, block);
        let c = dense.causal();
        prop_assert_eq!(c.nnz_blocks(), n * (n + 1) / 2);
        for r in 0..n {
            for col in 0..n {
                prop_assert_eq!(c.is_set(r, col), col <= r);
            }
        }
    }

    /// element_mask cardinality equals nnz_elements.
    #[test]
    fn element_mask_cardinality((n, block) in geometry(), seed in 0u64..1000) {
        let layout = pattern::bigbird(n * block, &BigBirdConfig {
            block, global_blocks: 1, window_blocks: 1, random_blocks: 2, seed,
        });
        let mask = layout.element_mask();
        let set = mask.iter().filter(|&&b| b).count();
        prop_assert_eq!(set, layout.nnz_elements());
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_consistency((n, block) in geometry(), seed in 0u64..1000) {
        let layout = pattern::bigbird(n * block, &BigBirdConfig {
            block, global_blocks: 1, window_blocks: 3, random_blocks: 1, seed,
        });
        let s = PatternStats::of(&layout);
        prop_assert!(s.row_min <= s.row_max);
        prop_assert!(s.row_mean >= s.row_min as f64 && s.row_mean <= s.row_max as f64);
        prop_assert!((s.density - s.nnz_blocks as f64 / (n * n) as f64).abs() < 1e-12);
        prop_assert!(s.imbalance >= 1.0 - 1e-12);
    }

    /// Block-sparse attention == masked dense attention, for random patterns.
    #[test]
    fn sparse_equals_masked_dense((n, block) in geometry(), seed in 0u64..1000) {
        let l = n * block;
        prop_assume!(l <= 128);
        let layout = pattern::bigbird(l, &BigBirdConfig {
            block, global_blocks: 1, window_blocks: 1, random_blocks: 1, seed,
        });
        let d = 8;
        let q = randn_matrix::<f64>(l, d, 1.0, seed);
        let k = randn_matrix::<f64>(l, d, 1.0, seed + 1);
        let v = randn_matrix::<f64>(l, d, 1.0, seed + 2);
        let sparse = spmm(&block_sparse_softmax(&sddmm(&q, &k, &layout).unwrap()), &v).unwrap();

        let mask = layout.element_mask();
        let scores = matmul(&q, &transpose(&k)).unwrap();
        let masked = Matrix::from_fn(l, l, |r, c| {
            if mask[r * l + c] { scores.get(r, c) } else { f64::NEG_INFINITY }
        });
        let p = resoftmax_kernels_free_softmax(&masked);
        let dense = matmul(&p, &v).unwrap();
        prop_assert!(max_abs_diff(&sparse, &dense) < 1e-9);
    }

    /// from_dense ∘ to_dense is the identity on the support.
    #[test]
    fn dense_roundtrip((n, block) in geometry(), seed in 0u64..1000) {
        let l = n * block;
        let layout = pattern::sliding_window(l, block, 1);
        let m = randn_matrix::<f64>(l, l, 1.0, seed);
        let bs = BlockSparseMatrix::from_dense(&m, layout.clone()).unwrap();
        let back = bs.to_dense(0.0);
        let bs2 = BlockSparseMatrix::from_dense(&back, layout).unwrap();
        prop_assert_eq!(bs, bs2);
    }
}

/// Local dense softmax reference (avoiding a circular dev-dependency on
/// resoftmax-kernels).
fn resoftmax_kernels_free_softmax(x: &Matrix<f64>) -> Matrix<f64> {
    let mut y = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let m = x.row(r).iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY {
            continue;
        }
        let d: f64 = x.row(r).iter().map(|v| (v - m).exp()).sum();
        for c in 0..x.cols() {
            y.set(r, c, (x.get(r, c) - m).exp() / d);
        }
    }
    y
}
