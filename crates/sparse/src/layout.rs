//! Block-sparse layout: which square blocks of the attention matrix exist.
//!
//! Following DeepSpeed / Triton block-sparse kernels (paper §3.4), sparsity is
//! defined at the granularity of `block × block` squares, so every retained
//! block is dense inside and tensor-core friendly.

use core::fmt;

/// Error for inconsistent layout construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError(String);

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid block-sparse layout: {}", self.0)
    }
}

impl std::error::Error for LayoutError {}

/// A block-sparsity pattern over an `L × L` attention matrix.
///
/// The grid is `n_blocks × n_blocks` where `n_blocks = L / block`; a `true`
/// mask entry means the block is retained (computed / stored), `false` means
/// skipped entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    block: usize,
    n_blocks: usize,
    mask: Vec<bool>,
}

impl BlockLayout {
    /// Builds a layout from a block-grid mask (row-major, `n_blocks²` long).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if `block == 0` or the mask length is not a
    /// perfect square of the implied grid.
    pub fn from_mask(block: usize, n_blocks: usize, mask: Vec<bool>) -> Result<Self, LayoutError> {
        if block == 0 {
            return Err(LayoutError("block size must be nonzero".into()));
        }
        if mask.len() != n_blocks * n_blocks {
            return Err(LayoutError(format!(
                "mask length {} != {}²",
                mask.len(),
                n_blocks
            )));
        }
        Ok(BlockLayout {
            block,
            n_blocks,
            mask,
        })
    }

    /// Fully dense layout for an `L × L` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is not a multiple of `block`.
    pub fn dense(seq_len: usize, block: usize) -> Self {
        let n = checked_blocks(seq_len, block);
        BlockLayout {
            block,
            n_blocks: n,
            mask: vec![true; n * n],
        }
    }

    /// Layout with no blocks (useful as a builder starting point).
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is not a multiple of `block`.
    pub fn empty(seq_len: usize, block: usize) -> Self {
        let n = checked_blocks(seq_len, block);
        BlockLayout {
            block,
            n_blocks: n,
            mask: vec![false; n * n],
        }
    }

    /// Block side length in elements.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// Grid side length in blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Sequence length `L = n_blocks × block`.
    #[inline]
    pub fn seq_len(&self) -> usize {
        self.n_blocks * self.block
    }

    /// Whether block `(br, bc)` is retained.
    ///
    /// # Panics
    ///
    /// Panics if out of the block grid.
    #[inline]
    pub fn is_set(&self, br: usize, bc: usize) -> bool {
        assert!(
            br < self.n_blocks && bc < self.n_blocks,
            "block index out of range"
        );
        self.mask[br * self.n_blocks + bc]
    }

    /// Sets block `(br, bc)`.
    ///
    /// # Panics
    ///
    /// Panics if out of the block grid.
    #[inline]
    pub fn set(&mut self, br: usize, bc: usize, value: bool) {
        assert!(
            br < self.n_blocks && bc < self.n_blocks,
            "block index out of range"
        );
        self.mask[br * self.n_blocks + bc] = value;
    }

    /// Number of retained blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Retained blocks in block-row `br`, as column indices.
    pub fn row_blocks(&self, br: usize) -> Vec<usize> {
        (0..self.n_blocks)
            .filter(|&bc| self.is_set(br, bc))
            .collect()
    }

    /// Number of retained blocks per block-row.
    pub fn row_counts(&self) -> Vec<usize> {
        (0..self.n_blocks)
            .map(|br| self.row_blocks(br).len())
            .collect()
    }

    /// Fraction of blocks retained, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.nnz_blocks() as f64 / self.mask.len() as f64
    }

    /// Number of retained *elements* (`nnz_blocks × block²`).
    pub fn nnz_elements(&self) -> usize {
        self.nnz_blocks() * self.block * self.block
    }

    /// Iterator over retained `(block_row, block_col)` coordinates in
    /// row-major order (the BSR storage order used by the numeric ops).
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.n_blocks;
        self.mask
            .iter()
            .enumerate()
            .filter(|(_, &set)| set)
            .map(move |(i, _)| (i / n, i % n))
    }

    /// CSR-style row pointers over retained blocks: `row_ptr[br]..row_ptr[br+1]`
    /// indexes into the row-major retained-block sequence.
    pub fn row_ptr(&self) -> Vec<usize> {
        let mut ptr = Vec::with_capacity(self.n_blocks + 1);
        ptr.push(0);
        let mut acc = 0;
        for br in 0..self.n_blocks {
            acc += self.row_blocks(br).len();
            ptr.push(acc);
        }
        ptr
    }

    /// Dense `L × L` boolean element mask (true = attend).
    pub fn element_mask(&self) -> Vec<bool> {
        let l = self.seq_len();
        let mut m = vec![false; l * l];
        for (br, bc) in self.iter_blocks() {
            for r in br * self.block..(br + 1) * self.block {
                for c in bc * self.block..(bc + 1) * self.block {
                    m[r * l + c] = true;
                }
            }
        }
        m
    }

    /// Union of two layouts (same geometry).
    ///
    /// # Panics
    ///
    /// Panics if geometries differ.
    pub fn union(&self, other: &BlockLayout) -> BlockLayout {
        assert_eq!(self.block, other.block, "block size mismatch");
        assert_eq!(self.n_blocks, other.n_blocks, "grid mismatch");
        let mask = self
            .mask
            .iter()
            .zip(&other.mask)
            .map(|(&a, &b)| a || b)
            .collect();
        BlockLayout {
            block: self.block,
            n_blocks: self.n_blocks,
            mask,
        }
    }

    /// Keeps only blocks on or below the diagonal (autoregressive masking, in
    /// block granularity: a block is kept if any of it is on/below the element
    /// diagonal, i.e. `bc <= br`).
    pub fn causal(&self) -> BlockLayout {
        let mut out = self.clone();
        for br in 0..self.n_blocks {
            for bc in 0..self.n_blocks {
                if bc > br {
                    out.set(br, bc, false);
                }
            }
        }
        out
    }
}

fn checked_blocks(seq_len: usize, block: usize) -> usize {
    assert!(block > 0, "block size must be nonzero");
    assert!(
        seq_len.is_multiple_of(block),
        "seq_len {seq_len} must be a multiple of block {block}"
    );
    seq_len / block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_empty() {
        let d = BlockLayout::dense(256, 64);
        assert_eq!(d.n_blocks(), 4);
        assert_eq!(d.seq_len(), 256);
        assert_eq!(d.nnz_blocks(), 16);
        assert_eq!(d.density(), 1.0);
        assert_eq!(d.nnz_elements(), 256 * 256);

        let e = BlockLayout::empty(256, 64);
        assert_eq!(e.nnz_blocks(), 0);
        assert_eq!(e.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of block")]
    fn non_divisible_rejected() {
        let _ = BlockLayout::dense(100, 64);
    }

    #[test]
    fn from_mask_validation() {
        assert!(BlockLayout::from_mask(0, 2, vec![true; 4]).is_err());
        assert!(BlockLayout::from_mask(64, 2, vec![true; 3]).is_err());
        let ok = BlockLayout::from_mask(64, 2, vec![true, false, false, true]).unwrap();
        assert_eq!(ok.nnz_blocks(), 2);
        assert!(ok.is_set(0, 0));
        assert!(!ok.is_set(0, 1));
    }

    #[test]
    fn set_get_row_blocks() {
        let mut l = BlockLayout::empty(256, 64);
        l.set(1, 2, true);
        l.set(1, 0, true);
        assert_eq!(l.row_blocks(1), vec![0, 2]);
        assert_eq!(l.row_blocks(0), Vec::<usize>::new());
        assert_eq!(l.row_counts(), vec![0, 2, 0, 0]);
    }

    #[test]
    fn row_ptr_csr() {
        let mut l = BlockLayout::empty(192, 64);
        l.set(0, 0, true);
        l.set(2, 0, true);
        l.set(2, 2, true);
        assert_eq!(l.row_ptr(), vec![0, 1, 1, 3]);
        let blocks: Vec<_> = l.iter_blocks().collect();
        assert_eq!(blocks, vec![(0, 0), (2, 0), (2, 2)]);
    }

    #[test]
    fn element_mask_expands_blocks() {
        let mut l = BlockLayout::empty(4, 2);
        l.set(0, 1, true);
        let m = l.element_mask();
        assert!(!m[0]); // (0,0)
        assert!(m[2]); // (0,2) inside block (0,1)
        assert!(m[4 + 3]); // (1,3)
        assert!(!m[2 * 4 + 2]); // (2,2)
        assert_eq!(m.iter().filter(|&&x| x).count(), 4);
    }

    #[test]
    fn union_and_causal() {
        let mut a = BlockLayout::empty(256, 64);
        a.set(0, 3, true);
        let mut b = BlockLayout::empty(256, 64);
        b.set(3, 0, true);
        let u = a.union(&b);
        assert_eq!(u.nnz_blocks(), 2);
        let c = u.causal();
        assert_eq!(c.nnz_blocks(), 1, "block above diagonal removed");
        assert!(c.is_set(3, 0));
    }

    #[test]
    #[should_panic(expected = "block index out of range")]
    fn out_of_range_panics() {
        let l = BlockLayout::dense(128, 64);
        let _ = l.is_set(2, 0);
    }
}
