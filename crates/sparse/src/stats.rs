//! Pattern statistics: the quantities that drive sparse-kernel performance.
//!
//! The paper's sparse-attention findings hinge on two properties of the
//! pattern, both computed here: overall density (how much work/traffic
//! remains) and the per-row nonzero distribution (load imbalance across
//! thread blocks, §5.2).

use crate::layout::BlockLayout;

/// Summary statistics of a block-sparse pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Sequence length.
    pub seq_len: usize,
    /// Block side.
    pub block: usize,
    /// Retained blocks.
    pub nnz_blocks: usize,
    /// Fraction of blocks retained.
    pub density: f64,
    /// Minimum retained blocks in any block-row.
    pub row_min: usize,
    /// Maximum retained blocks in any block-row.
    pub row_max: usize,
    /// Mean retained blocks per block-row.
    pub row_mean: f64,
    /// Standard deviation of retained blocks per block-row.
    pub row_std: f64,
    /// `row_max / row_mean`: the straggler factor bounding the load imbalance
    /// a per-row work assignment suffers (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl PatternStats {
    /// Computes statistics of a layout.
    pub fn of(layout: &BlockLayout) -> Self {
        let counts = layout.row_counts();
        let n = counts.len().max(1) as f64;
        let mean = counts.iter().sum::<usize>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean) * (c as f64 - mean))
            .sum::<f64>()
            / n;
        let row_max = counts.iter().copied().max().unwrap_or(0);
        PatternStats {
            seq_len: layout.seq_len(),
            block: layout.block(),
            nnz_blocks: layout.nnz_blocks(),
            density: layout.density(),
            row_min: counts.iter().copied().min().unwrap_or(0),
            row_max,
            row_mean: mean,
            row_std: var.sqrt(),
            imbalance: if mean > 0.0 {
                row_max as f64 / mean
            } else {
                1.0
            },
        }
    }
}

impl core::fmt::Display for PatternStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "L={} block={} nnz_blocks={} density={:.3} rows[min={} max={} mean={:.1} std={:.1}] imbalance={:.2}",
            self.seq_len,
            self.block,
            self.nnz_blocks,
            self.density,
            self.row_min,
            self.row_max,
            self.row_mean,
            self.row_std,
            self.imbalance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{bigbird, sliding_window, BigBirdConfig};

    #[test]
    fn dense_stats() {
        let s = PatternStats::of(&BlockLayout::dense(512, 64));
        assert_eq!(s.nnz_blocks, 64);
        assert_eq!(s.density, 1.0);
        assert_eq!(s.row_min, 8);
        assert_eq!(s.row_max, 8);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.row_std, 0.0);
    }

    #[test]
    fn empty_stats_no_panic() {
        let s = PatternStats::of(&BlockLayout::empty(512, 64));
        assert_eq!(s.nnz_blocks, 0);
        assert_eq!(s.imbalance, 1.0);
    }

    #[test]
    fn window_is_nearly_balanced() {
        let s = PatternStats::of(&sliding_window(4096, 64, 4));
        assert!(s.imbalance < 1.2, "window imbalance {}", s.imbalance);
    }

    #[test]
    fn bigbird_globals_create_imbalance() {
        let s = PatternStats::of(&bigbird(4096, &BigBirdConfig::default()));
        // The global block-rows are fully dense (64 blocks) while interior
        // rows have ~7: large straggler factor.
        assert!(s.row_max as f64 > s.row_mean * 3.0, "{s}");
        assert!(s.imbalance > 3.0);
    }

    #[test]
    fn display_is_informative() {
        let s = PatternStats::of(&BlockLayout::dense(128, 64));
        let txt = s.to_string();
        assert!(txt.contains("L=128"));
        assert!(txt.contains("density=1.000"));
    }
}
