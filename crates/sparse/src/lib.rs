//! Block-sparse attention: layouts, published patterns, statistics, and
//! numeric block-sparse operations.
//!
//! The paper evaluates softmax recomposition on the sparse-attention models
//! BigBird and Longformer, on top of a DeepSpeed/Triton-style *block-sparse*
//! representation (§3.4): sparsity at the granularity of square blocks so each
//! retained block stays dense and tensor-core friendly. This crate provides
//! that substrate:
//!
//! * [`BlockLayout`] — which blocks of the `L × L` attention matrix exist,
//!   with CSR-style accessors.
//! * [`pattern`] — generators for BigBird, Longformer, Sparse-Transformer
//!   (strided), sliding-window and global patterns.
//! * [`PatternStats`] — density and per-row imbalance, the two quantities
//!   driving sparse-kernel performance in the paper (§5.1–5.2).
//! * [`BlockSparseMatrix`] with [`sddmm`] / [`block_sparse_softmax`] /
//!   [`spmm`] — numerically exact block-sparse attention, validated against
//!   the masked dense reference.
//!
//! # Example
//!
//! ```
//! use resoftmax_sparse::{pattern, PatternStats};
//!
//! let layout = pattern::bigbird(4096, &pattern::BigBirdConfig::default());
//! let stats = PatternStats::of(&layout);
//! assert!(stats.density < 0.2, "BigBird keeps ~1/8 of blocks at L=4096");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layout;
mod ops;
pub mod pattern;
mod stats;

pub use layout::{BlockLayout, LayoutError};
pub use ops::{block_sparse_softmax, sddmm, spmm, BlockSparseMatrix};
pub use pattern::{BigBirdConfig, LongformerConfig};
pub use stats::PatternStats;
