//! Sparse-attention pattern generators.
//!
//! Each generator produces a [`BlockLayout`] replicating a published
//! attention pattern at block granularity:
//!
//! * [`bigbird`] — BigBird (Zaheer et al., NeurIPS 2020): global + sliding
//!   window + random blocks.
//! * [`longformer`] — Longformer (Beltagy et al., 2020): sliding window +
//!   task-designated global tokens.
//! * [`strided`] — Sparse Transformer (Child et al., 2019): local window +
//!   strided column attention.
//! * [`sliding_window`], [`global`] — building blocks, exposed for custom
//!   patterns.

use crate::layout::BlockLayout;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the BigBird block-sparse pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BigBirdConfig {
    /// Square block side (HuggingFace default 64).
    pub block: usize,
    /// Number of *global* block rows/cols at the start of the sequence
    /// (HuggingFace `num_global_blocks`, default 1 each side — we model the
    /// ITC variant where the first `global_blocks` are global).
    pub global_blocks: usize,
    /// Sliding-window width in blocks (HuggingFace default 3: diagonal ± 1).
    pub window_blocks: usize,
    /// Random blocks per block-row (HuggingFace default 3).
    pub random_blocks: usize,
    /// Seed for the random component.
    pub seed: u64,
}

impl Default for BigBirdConfig {
    fn default() -> Self {
        BigBirdConfig {
            block: 64,
            global_blocks: 1,
            window_blocks: 3,
            random_blocks: 3,
            seed: 0x5eed,
        }
    }
}

/// Parameters of the Longformer pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LongformerConfig {
    /// Square block side.
    pub block: usize,
    /// Total sliding-window width in *elements* (HuggingFace
    /// `attention_window`; Longformer-large uses 512, i.e. each token
    /// attends 256 left + 256 right).
    pub window: usize,
    /// Number of global tokens (rounded up to blocks), e.g. question tokens
    /// in QA; small for TriviaQA-style tasks.
    pub global_tokens: usize,
}

impl Default for LongformerConfig {
    fn default() -> Self {
        LongformerConfig {
            block: 64,
            window: 512,
            global_tokens: 64,
        }
    }
}

/// Sliding-window pattern: block `(r, c)` kept iff `|r - c| <= half_width`
/// (in blocks).
///
/// # Panics
///
/// Panics if `seq_len` is not a multiple of `block`.
pub fn sliding_window(seq_len: usize, block: usize, half_width_blocks: usize) -> BlockLayout {
    let mut l = BlockLayout::empty(seq_len, block);
    let n = l.n_blocks();
    for r in 0..n {
        let lo = r.saturating_sub(half_width_blocks);
        let hi = (r + half_width_blocks).min(n - 1);
        for c in lo..=hi {
            l.set(r, c, true);
        }
    }
    l
}

/// Global pattern: the first `global_blocks` block-rows and block-columns are
/// fully retained (those tokens attend to and are attended by everyone).
///
/// # Panics
///
/// Panics if `seq_len` is not a multiple of `block`.
pub fn global(seq_len: usize, block: usize, global_blocks: usize) -> BlockLayout {
    let mut l = BlockLayout::empty(seq_len, block);
    let n = l.n_blocks();
    let g = global_blocks.min(n);
    for r in 0..n {
        for c in 0..n {
            if r < g || c < g {
                l.set(r, c, true);
            }
        }
    }
    l
}

/// BigBird: global ∪ window ∪ random.
///
/// The random component picks `random_blocks` distinct non-window,
/// non-global columns per block-row, deterministically from `cfg.seed`.
///
/// # Panics
///
/// Panics if `seq_len` is not a multiple of `cfg.block`.
pub fn bigbird(seq_len: usize, cfg: &BigBirdConfig) -> BlockLayout {
    let window_half = cfg.window_blocks / 2;
    let mut l = sliding_window(seq_len, cfg.block, window_half).union(&global(
        seq_len,
        cfg.block,
        cfg.global_blocks,
    ));
    let n = l.n_blocks();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    for r in 0..n {
        let candidates: Vec<usize> = (0..n).filter(|&c| !l.is_set(r, c)).collect();
        for &c in candidates.choose_multiple(&mut rng, cfg.random_blocks.min(candidates.len())) {
            l.set(r, c, true);
        }
    }
    l
}

/// Longformer: sliding window (±`window` elements) plus global tokens.
///
/// # Panics
///
/// Panics if `seq_len` is not a multiple of `cfg.block`.
pub fn longformer(seq_len: usize, cfg: &LongformerConfig) -> BlockLayout {
    let half_blocks = (cfg.window / 2).div_ceil(cfg.block);
    let global_blocks = cfg.global_tokens.div_ceil(cfg.block);
    sliding_window(seq_len, cfg.block, half_blocks).union(&global(
        seq_len,
        cfg.block,
        global_blocks,
    ))
}

/// Sparse Transformer strided pattern: local window of `local_blocks` plus
/// every `stride_blocks`-th column.
///
/// # Panics
///
/// Panics if `seq_len` is not a multiple of `block`, or `stride_blocks == 0`.
pub fn strided(
    seq_len: usize,
    block: usize,
    local_blocks: usize,
    stride_blocks: usize,
) -> BlockLayout {
    assert!(stride_blocks > 0, "stride must be nonzero");
    let mut l = sliding_window(seq_len, block, local_blocks);
    let n = l.n_blocks();
    for r in 0..n {
        let mut c = 0;
        while c < n {
            l.set(r, c, true);
            c += stride_blocks;
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_shape() {
        let l = sliding_window(512, 64, 1);
        assert_eq!(l.n_blocks(), 8);
        // interior rows have 3 blocks, edges 2
        assert_eq!(l.row_counts(), vec![2, 3, 3, 3, 3, 3, 3, 2]);
        assert!(l.is_set(4, 3) && l.is_set(4, 4) && l.is_set(4, 5));
        assert!(!l.is_set(4, 6));
    }

    #[test]
    fn global_rows_and_cols() {
        let l = global(512, 64, 1);
        assert!(l.is_set(0, 7), "global row");
        assert!(l.is_set(7, 0), "global col");
        assert!(!l.is_set(3, 3), "interior not set");
        assert_eq!(l.nnz_blocks(), 8 + 8 - 1);
    }

    #[test]
    fn bigbird_components_present() {
        let cfg = BigBirdConfig::default();
        let l = bigbird(4096, &cfg);
        let n = l.n_blocks();
        assert_eq!(n, 64);
        // window
        assert!(l.is_set(30, 30) && l.is_set(30, 29) && l.is_set(30, 31));
        // global
        assert!(l.is_set(0, 50) && l.is_set(50, 0));
        // every interior row has window(3) + global(1) + random(3) = 7 blocks
        let counts = l.row_counts();
        for (r, &cnt) in counts.iter().enumerate().skip(1).take(n - 2) {
            assert!((6..=7).contains(&cnt), "row {r} has {cnt} blocks");
        }
        // deterministic in seed
        let l2 = bigbird(4096, &cfg);
        assert_eq!(l, l2);
        let l3 = bigbird(4096, &BigBirdConfig { seed: 999, ..cfg });
        assert_ne!(l, l3, "different seed, different randomness");
    }

    #[test]
    fn bigbird_density_scales_inversely_with_length() {
        let cfg = BigBirdConfig::default();
        let d1k = bigbird(1024, &cfg).density();
        let d4k = bigbird(4096, &cfg).density();
        assert!(d4k < d1k, "longer sequence = sparser: {d4k} < {d1k}");
        // paper: BigBird reduces attention computation to ~14.3% of BERT at L=4096
        assert!(d4k > 0.05 && d4k < 0.25, "density at 4k: {d4k}");
    }

    #[test]
    fn longformer_window_in_elements() {
        let cfg = LongformerConfig {
            block: 64,
            window: 512,
            global_tokens: 64,
        };
        let l = longformer(4096, &cfg);
        // 512 total = 256 each side = 4 blocks each side
        assert!(l.is_set(32, 28) && l.is_set(32, 36));
        assert!(!l.is_set(32, 27) && !l.is_set(32, 37));
        assert!(l.is_set(32, 0), "global column");
    }

    #[test]
    fn strided_pattern() {
        let l = strided(512, 64, 1, 4);
        assert!(l.is_set(5, 0) && l.is_set(5, 4), "strided columns");
        assert!(l.is_set(5, 5) && l.is_set(5, 6), "local window");
        assert!(!l.is_set(5, 2));
    }

    #[test]
    #[should_panic(expected = "stride must be nonzero")]
    fn zero_stride_panics() {
        let _ = strided(512, 64, 1, 0);
    }

    #[test]
    fn causal_composition_for_autoregressive_models() {
        let l = sliding_window(512, 64, 2).causal();
        assert!(l.is_set(4, 2) && l.is_set(4, 4));
        assert!(!l.is_set(4, 5), "future masked");
    }
}
