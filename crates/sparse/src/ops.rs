//! Numeric block-sparse matrices and the attention operations over them.
//!
//! [`BlockSparseMatrix`] stores only the retained blocks of an `L × L`
//! attention matrix (BSR order). The three operations of a block-sparse SDA
//! block are provided:
//!
//! * [`sddmm`] — sampled dense-dense matmul: compute `Q·Kᵀ` only where the
//!   layout retains a block (the first MatMul of sparse attention).
//! * [`block_sparse_softmax`] — row softmax over each row's retained support.
//! * [`spmm`] — block-sparse × dense matmul (`P·V`, the second MatMul).
//!
//! Semantics are validated against the dense reference: sparse attention is
//! exactly dense attention with a `-inf` mask outside the support.

use crate::layout::BlockLayout;
use resoftmax_tensor::{matmul_transpose_b, Matrix, Scalar, ShapeError};

/// A block-sparse `L × L` matrix: layout + dense blocks in BSR (row-major
/// retained-block) order.
#[derive(Clone, PartialEq)]
pub struct BlockSparseMatrix<T> {
    layout: BlockLayout,
    blocks: Vec<Matrix<T>>,
}

impl<T: Scalar> core::fmt::Debug for BlockSparseMatrix<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BlockSparseMatrix<{}> L={} block={} nnz_blocks={}",
            T::NAME,
            self.layout.seq_len(),
            self.layout.block(),
            self.blocks.len()
        )
    }
}

impl<T: Scalar> BlockSparseMatrix<T> {
    /// Creates a block-sparse matrix of zeros with the given layout.
    pub fn zeros(layout: BlockLayout) -> Self {
        let b = layout.block();
        let blocks = layout.iter_blocks().map(|_| Matrix::zeros(b, b)).collect();
        BlockSparseMatrix { layout, blocks }
    }

    /// Gathers the retained blocks of a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `dense` is not `L × L` for the layout.
    pub fn from_dense(dense: &Matrix<T>, layout: BlockLayout) -> Result<Self, ShapeError> {
        let l = layout.seq_len();
        if dense.shape() != (l, l) {
            return Err(ShapeError::new(format!(
                "dense {:?} vs layout {l}x{l}",
                dense.shape()
            )));
        }
        let b = layout.block();
        let blocks = layout
            .iter_blocks()
            .map(|(br, bc)| dense.block(br * b, bc * b, b, b).expect("in range"))
            .collect();
        Ok(BlockSparseMatrix { layout, blocks })
    }

    /// The sparsity layout.
    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    /// The retained blocks in BSR order.
    pub fn blocks(&self) -> &[Matrix<T>] {
        &self.blocks
    }

    /// Mutable blocks (BSR order).
    pub fn blocks_mut(&mut self) -> &mut [Matrix<T>] {
        &mut self.blocks
    }

    /// Expands to a dense matrix, placing `fill` outside the support
    /// (use `T::zero()` after softmax, `T::neg_infinity()` before).
    pub fn to_dense(&self, fill: T) -> Matrix<T> {
        let l = self.layout.seq_len();
        let b = self.layout.block();
        let mut out = Matrix::filled(l, l, fill);
        for ((br, bc), block) in self.layout.iter_blocks().zip(&self.blocks) {
            out.write_block(br * b, bc * b, block).expect("in range");
        }
        out
    }

    /// Device bytes of the retained blocks only.
    pub fn device_bytes(&self) -> u64 {
        self.blocks.iter().map(Matrix::device_bytes).sum()
    }

    /// Extracts row `r`'s support as `(column_indices, values)`, scanning the
    /// retained blocks of its block-row in order.
    pub fn row_support(&self, r: usize) -> (Vec<usize>, Vec<T>) {
        let b = self.layout.block();
        let br = r / b;
        let within = r % b;
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for ((row_blk, col_blk), block) in self.layout.iter_blocks().zip(&self.blocks) {
            if row_blk != br {
                continue;
            }
            for c in 0..b {
                cols.push(col_blk * b + c);
                vals.push(block.get(within, c));
            }
        }
        (cols, vals)
    }
}

/// Sampled dense-dense matmul: `scores[block] = Q_block · K_blockᵀ` for every
/// retained block. `q` and `k` are `L × D_head` (row-major, K untransposed).
///
/// # Errors
///
/// Returns [`ShapeError`] if `q`/`k` are not `L × d` with matching `d`.
pub fn sddmm<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    layout: &BlockLayout,
) -> Result<BlockSparseMatrix<T>, ShapeError> {
    let l = layout.seq_len();
    if q.rows() != l || k.rows() != l || q.cols() != k.cols() {
        return Err(ShapeError::new(format!(
            "sddmm q {:?}, k {:?}, L={l}",
            q.shape(),
            k.shape()
        )));
    }
    let _span = resoftmax_obs::span!("sddmm", "sparse");
    let b = layout.block();
    let d = q.cols();
    // Retained blocks are independent output tiles: one map entry each.
    let coords: Vec<(usize, usize)> = layout.iter_blocks().collect();
    let blocks = resoftmax_parallel::parallel_map(&coords, |_, &(br, bc)| {
        let qb = q.block(br * b, 0, b, d).expect("in range");
        let kb = k.block(bc * b, 0, b, d).expect("in range");
        matmul_transpose_b(&qb, &kb).expect("dims match")
    });
    Ok(BlockSparseMatrix {
        layout: layout.clone(),
        blocks,
    })
}

/// Row softmax over the retained support of each row (safe softmax with the
/// max subtracted), computed in `f64` and rounded once per element.
///
/// Rows with empty support are left untouched (they have no retained blocks
/// to write into).
pub fn block_sparse_softmax<T: Scalar>(scores: &BlockSparseMatrix<T>) -> BlockSparseMatrix<T> {
    let _span = resoftmax_obs::span!("block_sparse_softmax", "sparse");
    let b = scores.layout.block();
    let mut out = scores.clone();

    // BSR order keeps each block-row's retained blocks contiguous, and rows
    // reduce only over their own support — block-rows parallelize bit-exactly.
    let row_ptr = scores.layout.row_ptr();
    let lens: Vec<usize> = row_ptr.windows(2).map(|w| w[1] - w[0]).collect();
    resoftmax_parallel::parallel_ranges_mut(&mut out.blocks, &lens, |br, row_blocks| {
        if row_blocks.is_empty() {
            return;
        }
        let src_row = &scores.blocks[row_ptr[br]..row_ptr[br] + row_blocks.len()];
        for within in 0..b {
            // max over support
            let mut m = f64::NEG_INFINITY;
            for blk in src_row {
                for c in 0..b {
                    m = m.max(blk.get(within, c).to_f64());
                }
            }
            // normalizer
            let mut d = 0.0f64;
            for blk in src_row {
                for c in 0..b {
                    d += (blk.get(within, c).to_f64() - m).exp();
                }
            }
            // scale
            for (ob, blk) in row_blocks.iter_mut().zip(src_row) {
                for c in 0..b {
                    let y = (blk.get(within, c).to_f64() - m).exp() / d;
                    ob.set(within, c, T::from_f64(y));
                }
            }
        }
    });
    out
}

/// Block-sparse × dense matmul: `out = P · V` where `p` is block-sparse
/// `L × L` and `v` is dense `L × D_head`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `v.rows() != L`.
pub fn spmm<T: Scalar>(p: &BlockSparseMatrix<T>, v: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
    let l = p.layout.seq_len();
    if v.rows() != l {
        return Err(ShapeError::new(format!("spmm v {:?} vs L={l}", v.shape())));
    }
    let _span = resoftmax_obs::span!("spmm", "sparse");
    let b = p.layout.block();
    let d = v.cols();
    let mut out = Matrix::<T>::zeros(l, d);
    // f64 accumulators per output element, accumulated block by block.
    // Each block-row touches only its own band of `b` output rows, so bands
    // parallelize with per-element accumulation order unchanged (the blocks
    // of one block-row are consecutive in BSR order).
    let row_ptr = p.layout.row_ptr();
    let order: Vec<(usize, usize)> = p.layout.iter_blocks().collect();
    resoftmax_parallel::parallel_chunks_mut(out.as_mut_slice(), (b * d).max(1), |br, band| {
        let mut acc = vec![0.0f64; band.len()];
        for bi in row_ptr[br]..row_ptr[br + 1] {
            let (_, bc) = order[bi];
            let block = &p.blocks[bi];
            for r in 0..b {
                for c in 0..b {
                    let pv = block.get(r, c).to_f64();
                    if pv == 0.0 {
                        continue;
                    }
                    let k_row = bc * b + c;
                    for j in 0..d {
                        acc[r * d + j] += pv * v.get(k_row, j).to_f64();
                    }
                }
            }
        }
        for (o, a) in band.iter_mut().zip(&acc) {
            *o = T::from_f64(*a);
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{bigbird, sliding_window, BigBirdConfig};
    use resoftmax_tensor::{matmul, max_abs_diff, randn_matrix, transpose};

    /// Dense reference: full QKᵀ, -inf outside support, dense softmax, PV.
    fn dense_reference(
        q: &Matrix<f64>,
        k: &Matrix<f64>,
        v: &Matrix<f64>,
        layout: &BlockLayout,
    ) -> Matrix<f64> {
        let l = layout.seq_len();
        let scores = matmul(q, &transpose(k)).unwrap();
        let mask = layout.element_mask();
        let masked = Matrix::from_fn(l, l, |r, c| {
            if mask[r * l + c] {
                scores.get(r, c)
            } else {
                f64::NEG_INFINITY
            }
        });
        // dense softmax
        let mut p = Matrix::<f64>::zeros(l, l);
        for r in 0..l {
            let m = masked
                .row(r)
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let d: f64 = masked.row(r).iter().map(|x| (x - m).exp()).sum();
            for c in 0..l {
                p.set(r, c, (masked.get(r, c) - m).exp() / d);
            }
        }
        matmul(&p, v).unwrap()
    }

    #[test]
    fn from_dense_to_dense_roundtrip() {
        let layout = sliding_window(8, 2, 1);
        let dense = randn_matrix::<f64>(8, 8, 1.0, 1);
        let bs = BlockSparseMatrix::from_dense(&dense, layout.clone()).unwrap();
        let back = bs.to_dense(0.0);
        for (r, c, v) in dense.iter() {
            let mask = layout.element_mask();
            if mask[r * 8 + c] {
                assert_eq!(back.get(r, c), v);
            } else {
                assert_eq!(back.get(r, c), 0.0);
            }
        }
        assert!(BlockSparseMatrix::from_dense(&randn_matrix::<f64>(4, 8, 1.0, 2), layout).is_err());
    }

    #[test]
    fn zeros_and_bytes() {
        let layout = sliding_window(8, 2, 0); // diagonal only: 4 blocks of 2x2
        let z = BlockSparseMatrix::<f32>::zeros(layout);
        assert_eq!(z.blocks().len(), 4);
        assert_eq!(z.device_bytes(), 4 * 4 * 4);
    }

    #[test]
    fn sddmm_matches_dense_on_support() {
        let layout = sliding_window(8, 2, 1);
        let q = randn_matrix::<f64>(8, 4, 1.0, 10);
        let k = randn_matrix::<f64>(8, 4, 1.0, 11);
        let bs = sddmm(&q, &k, &layout).unwrap();
        let dense = matmul(&q, &transpose(&k)).unwrap();
        let mask = layout.element_mask();
        let expanded = bs.to_dense(0.0);
        for (r, c, v) in expanded.iter() {
            if mask[r * 8 + c] {
                assert!((v - dense.get(r, c)).abs() < 1e-9);
            }
        }
        // shape errors
        assert!(sddmm(&randn_matrix::<f64>(4, 4, 1.0, 0), &k, &layout).is_err());
        assert!(sddmm(&q, &randn_matrix::<f64>(8, 5, 1.0, 0), &layout).is_err());
    }

    #[test]
    fn sparse_softmax_rows_sum_to_one() {
        let layout = bigbird(
            256,
            &BigBirdConfig {
                block: 32,
                ..Default::default()
            },
        );
        let q = randn_matrix::<f64>(256, 16, 1.0, 20);
        let k = randn_matrix::<f64>(256, 16, 1.0, 21);
        let p = block_sparse_softmax(&sddmm(&q, &k, &layout).unwrap());
        for r in 0..256 {
            let (_, vals) = p.row_support(r);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn full_sparse_attention_equals_masked_dense_reference() {
        let layout = bigbird(
            128,
            &BigBirdConfig {
                block: 16,
                random_blocks: 2,
                ..Default::default()
            },
        );
        let q = randn_matrix::<f64>(128, 8, 1.0, 30);
        let k = randn_matrix::<f64>(128, 8, 1.0, 31);
        let v = randn_matrix::<f64>(128, 8, 1.0, 32);

        let scores = sddmm(&q, &k, &layout).unwrap();
        let p = block_sparse_softmax(&scores);
        let out = spmm(&p, &v).unwrap();

        let reference = dense_reference(&q, &k, &v, &layout);
        assert!(
            max_abs_diff(&out, &reference) < 1e-9,
            "diff {}",
            max_abs_diff(&out, &reference)
        );
    }

    #[test]
    fn dense_layout_reduces_to_dense_attention() {
        let layout = BlockLayout::dense(32, 8);
        let q = randn_matrix::<f64>(32, 8, 1.0, 40);
        let k = randn_matrix::<f64>(32, 8, 1.0, 41);
        let v = randn_matrix::<f64>(32, 8, 1.0, 42);
        let out = spmm(&block_sparse_softmax(&sddmm(&q, &k, &layout).unwrap()), &v).unwrap();
        let reference = dense_reference(&q, &k, &v, &layout);
        assert!(max_abs_diff(&out, &reference) < 1e-9);
    }

    #[test]
    fn spmm_shape_error() {
        let layout = BlockLayout::dense(8, 2);
        let p = BlockSparseMatrix::<f64>::zeros(layout);
        assert!(spmm(&p, &randn_matrix::<f64>(4, 2, 1.0, 0)).is_err());
    }

    #[test]
    fn row_support_columns_are_correct() {
        let mut layout = BlockLayout::empty(8, 2);
        layout.set(1, 0, true);
        layout.set(1, 3, true);
        let mut bs = BlockSparseMatrix::<f32>::zeros(layout);
        bs.blocks_mut()[0].set(0, 1, 7.0); // block (1,0), within-row 0 => row 2, col 1
        let (cols, vals) = bs.row_support(2);
        assert_eq!(cols, vec![0, 1, 6, 7]);
        assert_eq!(vals[1], 7.0);
        // empty row
        let (cols0, _) = bs.row_support(0);
        assert!(cols0.is_empty());
    }
}
