//! Numeric verification of the paper's mathematical claims.
//!
//! Every claim in §3 reduces to an equality between pipelines; this module
//! measures those equalities on random matrices at three precisions and
//! reports the observed error, so examples, tests and the README can *show*
//! — not assert — that the recomposition is exact.

use resoftmax_analyzer::error_model;
use resoftmax_fp16::{ulp_distance, F16};
use resoftmax_gpusim::AccumFormat;
use resoftmax_kernels::{
    decomposed_softmax, recomposed_attention, reference_attention, softmax_backward, softmax_rows,
    softmax_rows_f64,
};
use resoftmax_tensor::{max_abs_diff, randn_matrix, Matrix};
use serde::{Deserialize, Serialize};

/// Binary16 comparison tolerances for a decomposed-softmax pipeline over
/// rows of length `l` split into `t`-wide sub-vectors, derived from the
/// analyzer's certified error model ([`resoftmax_analyzer::error_model`])
/// instead of hand-picked constants. The static bound is worst-case, so it
/// is a sound acceptance threshold for any measured error — the
/// `resoftmax-bench` cross-validation suite pins `measured ≤ derived` over
/// the full analysis grid.
///
/// Compared to the historical hand constants: the derived absolute/ULP
/// tolerances are somewhat *looser* (e.g. 3.9e-3 vs 2e-3 and 10 vs 8 ULPs
/// at `l=256, t=64` — the price of a certificate that must hold for every
/// input), while the derived row-sum tolerance is *tighter* (3.9e-3 vs the
/// old 2e-2 blanket).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedTolerances {
    /// Max acceptable |Δ| vs the correctly rounded oracle. Softmax outputs
    /// lie in `[0, 1]`, so the certified relative bound doubles as an
    /// absolute one.
    pub abs: f64,
    /// Max acceptable ULP distance at binary16.
    pub ulps: u32,
    /// Max acceptable row-sum deviation from 1.0.
    pub row_sum: f64,
}

/// Derives the binary16 verification tolerances for `verify_decomposition`
/// at `(l, t)` from the certified error bound of the fp32-accumulation
/// decomposed pipeline.
pub fn derived_fp16_tolerances(l: usize, t: usize) -> DerivedTolerances {
    let b = error_model::decomposed(l, t, AccumFormat::Fp32, AccumFormat::Fp32);
    DerivedTolerances {
        abs: b.rel,
        ulps: b.ulps,
        row_sum: b.row_sum,
    }
}

/// Derives the binary16 absolute tolerance for `verify_fusion` at `(l, t)`:
/// the certified relative softmax bound scaled by the attention output
/// range. With unit-variance `V` the output magnitude is bounded by ~4
/// (a 4σ row of a convex combination), so `|Δoutput| ≤ 4 × rel`.
pub fn derived_fusion_tolerance(l: usize, t: usize) -> f64 {
    4.0 * error_model::decomposed(l, t, AccumFormat::Fp32, AccumFormat::Fp32).rel
}

/// Observed error between the decomposed/fused pipeline and the monolithic
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceReport {
    /// Row length used.
    pub l: usize,
    /// Sub-vector length used.
    pub t: usize,
    /// Max |Δ| of the decomposition vs the f64 oracle, computed in f64.
    pub max_abs_f64: f64,
    /// Max |Δ| computed in f32.
    pub max_abs_f32: f64,
    /// Max |Δ| computed in binary16.
    pub max_abs_fp16: f64,
    /// Max ULP distance of the binary16 decomposition from the
    /// correctly-rounded oracle result.
    pub max_ulp_fp16: u32,
    /// Worst row-sum deviation from 1.0 of the binary16 decomposition.
    pub max_row_sum_err_fp16: f64,
}

/// Measures decomposed softmax (Eq. 2) against monolithic safe softmax
/// (Eq. 1) on a seeded random `rows × l` matrix.
///
/// # Panics
///
/// Panics if `t` does not divide `l`.
pub fn verify_decomposition(rows: usize, l: usize, t: usize, seed: u64) -> EquivalenceReport {
    assert!(l.is_multiple_of(t), "t must divide l");
    // f64: must be exact to ~1e-14.
    let x64 = randn_matrix::<f64>(rows, l, 3.0, seed);
    let oracle = softmax_rows_f64(&x64);
    let dec64 = decomposed_softmax(&x64, t).expect("t divides l");
    let max_abs_f64 = max_abs_diff(&oracle, &dec64);

    // f32.
    let x32: Matrix<f32> = x64.cast();
    let dec32 = decomposed_softmax(&x32, t).expect("t divides l");
    let ref32 = softmax_rows(&x32);
    let max_abs_f32 = max_abs_diff(&ref32, &dec32);

    // binary16: measure against the correctly rounded oracle.
    let x16: Matrix<F16> = x64.cast();
    let dec16 = decomposed_softmax(&x16, t).expect("t divides l");
    let oracle16 = softmax_rows_f64(&x16);
    let max_abs_fp16 = max_abs_diff(&oracle16, &dec16);
    let rounded_oracle: Matrix<F16> = oracle16.cast();
    let max_ulp_fp16 = dec16
        .as_slice()
        .iter()
        .zip(rounded_oracle.as_slice())
        .map(|(&a, &b)| ulp_distance(a, b))
        .max()
        .unwrap_or(0);
    let max_row_sum_err_fp16 = (0..rows)
        .map(|r| {
            let s: f64 = dec16.row(r).iter().map(|v| v.to_f64()).sum();
            (s - 1.0).abs()
        })
        .fold(0.0, f64::max);

    EquivalenceReport {
        l,
        t,
        max_abs_f64,
        max_abs_f32,
        max_abs_fp16,
        max_ulp_fp16,
        max_row_sum_err_fp16,
    }
}

/// Observed error of the fully fused attention pipeline
/// (`Q·Kᵀ`+LS → IR → GS+`P·V`) against the unfused reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionReport {
    /// Sequence length.
    pub l: usize,
    /// Head size.
    pub d_head: usize,
    /// Sub-vector / tile width.
    pub t: usize,
    /// Max |Δ| at f64.
    pub max_abs_f64: f64,
    /// Max |Δ| at binary16.
    pub max_abs_fp16: f64,
}

/// Measures the recomposed (fused) attention layer against the unfused
/// reference at f64 and binary16.
///
/// # Panics
///
/// Panics if `t` does not divide `l`.
pub fn verify_fusion(l: usize, d_head: usize, t: usize, seed: u64) -> FusionReport {
    assert!(l.is_multiple_of(t), "t must divide l");
    let scale = 1.0 / (d_head as f64).sqrt();

    let q = randn_matrix::<f64>(l, d_head, 1.0, seed);
    let k = randn_matrix::<f64>(l, d_head, 1.0, seed + 1);
    let v = randn_matrix::<f64>(l, d_head, 1.0, seed + 2);
    let reference = reference_attention(&q, &k, &v, scale, None).expect("shapes ok");
    let (fused, _) = recomposed_attention(&q, &k, &v, t, scale, None).expect("shapes ok");
    let max_abs_f64 = max_abs_diff(&reference, &fused);

    let q16: Matrix<F16> = q.cast();
    let k16: Matrix<F16> = k.cast();
    let v16: Matrix<F16> = v.cast();
    let ref16 = reference_attention(&q16, &k16, &v16, scale, None).expect("shapes ok");
    let (fused16, _) = recomposed_attention(&q16, &k16, &v16, t, scale, None).expect("shapes ok");
    let max_abs_fp16 = max_abs_diff(&ref16, &fused16);

    FusionReport {
        l,
        d_head,
        t,
        max_abs_f64,
        max_abs_fp16,
    }
}

/// Verifies the training claim (§6 / Eq. 3): softmax backward computed from
/// the *output* matches central finite differences of the forward pass, so
/// the input never needs to be stored. Returns the max |Δ| against finite
/// differences.
pub fn verify_backward(rows: usize, l: usize, seed: u64) -> f64 {
    let x = randn_matrix::<f64>(rows, l, 1.0, seed);
    let dy = randn_matrix::<f64>(rows, l, 1.0, seed + 1);
    let y = softmax_rows_f64(&x);
    let dx = softmax_backward(&y, &dy);
    let eps = 1e-6;
    let mut worst = 0.0f64;
    for r in 0..rows {
        for c in 0..l {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let loss = |m: &Matrix<f64>| -> f64 {
                softmax_rows_f64(m)
                    .as_slice()
                    .iter()
                    .zip(dy.as_slice())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            worst = worst.max((numeric - dx.get(r, c)).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_exact_at_f64() {
        let r = verify_decomposition(8, 256, 64, 42);
        // f64/f32 thresholds stay hand-set: they bound *compute* precision,
        // outside the binary16 error model's scope.
        assert!(r.max_abs_f64 < 1e-13, "{r:?}");
        assert!(r.max_abs_f32 < 1e-6, "{r:?}");
        // Binary16 thresholds are the certified bounds, not hand constants.
        let tol = derived_fp16_tolerances(256, 64);
        assert!(r.max_abs_fp16 < tol.abs, "{r:?} vs {tol:?}");
        assert!(r.max_ulp_fp16 <= tol.ulps, "{r:?} vs {tol:?}");
        assert!(r.max_row_sum_err_fp16 < tol.row_sum, "{r:?} vs {tol:?}");
    }

    #[test]
    fn fusion_exact_at_f64() {
        let r = verify_fusion(128, 64, 64, 7);
        assert!(r.max_abs_f64 < 1e-5, "{r:?}"); // f32 MMA accumulators
        assert!(r.max_abs_fp16 < derived_fusion_tolerance(128, 64), "{r:?}");
    }

    #[test]
    fn derived_tolerances_relate_to_old_hand_constants_as_documented() {
        let tol = derived_fp16_tolerances(256, 64);
        // Looser than the old 2e-3 abs / 8 ULP constants (worst-case
        // certificates), tighter than the old 2e-2 row-sum blanket.
        assert!(tol.abs > 2e-3 && tol.abs < 1e-2, "{tol:?}");
        assert!(tol.ulps >= 8, "{tol:?}");
        assert!(tol.row_sum < 2e-2, "{tol:?}");
        // Tolerances grow with the sub-vector count and tile width, never
        // past the certification budget at paper-scale shapes.
        assert!(derived_fp16_tolerances(4096, 64).abs < resoftmax_analyzer::CERT_BUDGET_REL);
    }

    #[test]
    fn backward_matches_finite_differences() {
        assert!(verify_backward(2, 16, 3) < 1e-5);
    }

    #[test]
    fn t_sweep_stays_exact() {
        for t in [16, 32, 64, 128, 256] {
            let r = verify_decomposition(4, 256, t, 11);
            assert!(r.max_abs_f64 < 1e-13, "t={t}: {r:?}");
        }
    }
}

/// Observed error of the online-softmax pipelines (dense and block-sparse)
/// against their unfused references.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Sequence length.
    pub l: usize,
    /// Tile / block width used.
    pub t: usize,
    /// Dense online vs unfused reference, f64 inputs.
    pub dense_max_abs: f64,
    /// Block-sparse online vs unfused block-sparse pipeline (BigBird
    /// pattern), f64 inputs.
    pub sparse_max_abs: f64,
}

/// Measures the online-softmax extension against the references.
///
/// # Panics
///
/// Panics if `t` does not divide `l`.
pub fn verify_online(l: usize, d_head: usize, t: usize, seed: u64) -> OnlineReport {
    use resoftmax_kernels::{bs_online_attention, online_attention};
    use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig};
    use resoftmax_tensor::scale as scale_op;

    assert!(l.is_multiple_of(t), "t must divide l");
    let scale = 1.0 / (d_head as f64).sqrt();
    let q = randn_matrix::<f64>(l, d_head, 1.0, seed);
    let k = randn_matrix::<f64>(l, d_head, 1.0, seed + 1);
    let v = randn_matrix::<f64>(l, d_head, 1.0, seed + 2);

    let dense_ref = reference_attention(&q, &k, &v, scale, None).expect("shapes ok");
    let dense_online = online_attention(&q, &k, &v, t, scale, None).expect("shapes ok");
    let dense_max_abs = max_abs_diff(&dense_ref, &dense_online);

    let layout = pattern::bigbird(
        l,
        &BigBirdConfig {
            block: t,
            random_blocks: 2,
            ..Default::default()
        },
    );
    let mut scores = sddmm(&q, &k, &layout).expect("shapes ok");
    for block in scores.blocks_mut() {
        *block = scale_op(block, scale);
    }
    let sparse_ref = spmm(&block_sparse_softmax(&scores), &v).expect("shapes ok");
    let sparse_online = bs_online_attention(&q, &k, &v, &layout, scale).expect("shapes ok");
    let sparse_max_abs = max_abs_diff(&sparse_ref, &sparse_online);

    OnlineReport {
        l,
        t,
        dense_max_abs,
        sparse_max_abs,
    }
}

#[cfg(test)]
mod online_verify_tests {
    use super::*;

    #[test]
    fn online_pipelines_verified() {
        let r = verify_online(128, 32, 16, 77);
        assert!(r.dense_max_abs < 1e-5, "{r:?}");
        assert!(r.sparse_max_abs < 1e-5, "{r:?}");
    }
}
