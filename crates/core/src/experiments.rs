//! Experiment drivers: one function per table/figure of the paper.
//!
//! Each driver runs the simulated experiments and returns typed rows; the
//! `resoftmax-bench` binaries print them, and the integration tests assert
//! the paper's qualitative claims on them. See `EXPERIMENTS.md` for the
//! paper-vs-measured record.

use resoftmax_gpusim::{DeviceSpec, KernelCategory, LaunchError};
use resoftmax_model::{run_inference, LibraryProfile, ModelConfig, RunParams, SoftmaxStrategy};
use resoftmax_parallel::parallel_map;
use serde::{Deserialize, Serialize};

/// The paper's default evaluation point: L = 4096, batch 1 (§4).
pub const DEFAULT_SEQ_LEN: usize = 4096;

/// One bar group of Fig. 2: a model's execution-time breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Model name.
    pub model: String,
    /// Total latency in milliseconds.
    pub total_ms: f64,
    /// Fraction of time in SDA MatMuls (`Q·Kᵀ` + `P·V`).
    pub matmul_sda_frac: f64,
    /// Fraction in the softmax family.
    pub softmax_frac: f64,
    /// Fraction in MHA FC layers.
    pub fc_frac: f64,
    /// Fraction in the FeedForward block.
    pub feedforward_frac: f64,
    /// Everything else (LayerNorm, elementwise, embedding).
    pub etc_frac: f64,
    /// Fraction in the whole SDA block.
    pub sda_frac: f64,
}

/// Fig. 2: execution-time breakdown of the four models on one device.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch on the device.
pub fn fig2_breakdown(device: &DeviceSpec, seq_len: usize) -> Result<Vec<Fig2Row>, LaunchError> {
    let models = ModelConfig::all_eval_models();
    parallel_map(&models, |_, model| {
        let r = run_inference(model, &RunParams::new(seq_len), device.clone())?;
        let b = r.breakdown();
        let total = b.total_time_s();
        let frac = |cats: &[KernelCategory]| -> f64 {
            cats.iter().map(|&c| b.time_of(c)).sum::<f64>() / total
        };
        Ok(Fig2Row {
            model: model.name.clone(),
            total_ms: total * 1e3,
            matmul_sda_frac: frac(&[KernelCategory::MatMulQk, KernelCategory::MatMulPv]),
            softmax_frac: r.softmax_time_fraction(),
            fc_frac: frac(&[KernelCategory::Fc]),
            feedforward_frac: frac(&[KernelCategory::FeedForward]),
            etc_frac: frac(&[
                KernelCategory::LayerNorm,
                KernelCategory::Scale,
                KernelCategory::Mask,
                KernelCategory::Activation,
                KernelCategory::Other,
            ]),
            sda_frac: r.sda_time_fraction(),
        })
    })
    .into_iter()
    .collect()
}

/// Fig. 5: time and traffic shares of the decomposed softmax sub-layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Model name.
    pub model: String,
    /// LS share of decomposed-softmax time.
    pub ls_time_frac: f64,
    /// IR share of time.
    pub ir_time_frac: f64,
    /// GS share of time.
    pub gs_time_frac: f64,
    /// LS share of decomposed-softmax off-chip traffic.
    pub ls_dram_frac: f64,
    /// IR share of traffic.
    pub ir_dram_frac: f64,
    /// GS share of traffic.
    pub gs_dram_frac: f64,
}

/// Fig. 5: runs each model under SD and splits the softmax sub-layer costs.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn fig5_sublayers(device: &DeviceSpec, seq_len: usize) -> Result<Vec<Fig5Row>, LaunchError> {
    let models = ModelConfig::all_eval_models();
    parallel_map(&models, |_, model| {
        let r = run_inference(
            model,
            &RunParams::new(seq_len).strategy(SoftmaxStrategy::Decomposed),
            device.clone(),
        )?;
        let b = r.breakdown();
        let (ls_t, ir_t, gs_t) = (
            b.time_of(KernelCategory::LocalSoftmax),
            b.time_of(KernelCategory::InterReduction),
            b.time_of(KernelCategory::GlobalScaling),
        );
        let (ls_d, ir_d, gs_d) = (
            b.dram_of(KernelCategory::LocalSoftmax),
            b.dram_of(KernelCategory::InterReduction),
            b.dram_of(KernelCategory::GlobalScaling),
        );
        let tt = ls_t + ir_t + gs_t;
        let td = ls_d + ir_d + gs_d;
        Ok(Fig5Row {
            model: model.name.clone(),
            ls_time_frac: ls_t / tt,
            ir_time_frac: ir_t / tt,
            gs_time_frac: gs_t / tt,
            ls_dram_frac: ls_d / td,
            ir_dram_frac: ir_d / td,
            gs_dram_frac: gs_d / td,
        })
    })
    .into_iter()
    .collect()
}

/// One bar of Fig. 7: a library's latency on a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Library name (HG / FT / TRT / DS / Ours-baseline / AutoTVM).
    pub library: String,
    /// Model name.
    pub model: String,
    /// Per-iteration latency in milliseconds.
    pub total_ms: f64,
}

/// Fig. 7: library comparison on BERT-large and BigBird-large
/// (plus AutoTVM, reported in the §4 text).
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn fig7_libraries(device: &DeviceSpec, seq_len: usize) -> Result<Vec<Fig7Row>, LaunchError> {
    let mut lineup = LibraryProfile::fig7_lineup();
    lineup.push(LibraryProfile::autotvm());
    let mut combos = Vec::new();
    for model in [ModelConfig::bert_large(), ModelConfig::bigbird_large()] {
        for profile in &lineup {
            combos.push((model.clone(), profile.clone()));
        }
    }
    parallel_map(&combos, |_, (model, profile)| {
        let r = run_inference(
            model,
            &RunParams::new(seq_len).profile(profile.clone()),
            device.clone(),
        )?;
        Ok(Fig7Row {
            library: profile.name.clone(),
            model: model.name.clone(),
            total_ms: r.total_time_s() * 1e3,
        })
    })
    .into_iter()
    .collect()
}

/// One model's Fig. 8 measurements (normalized to the baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Model name.
    pub model: String,
    /// Baseline latency in milliseconds.
    pub baseline_ms: f64,
    /// Baseline off-chip traffic in GB.
    pub baseline_gb: f64,
    /// SD speedup over baseline (>1 is faster).
    pub sd_speedup: f64,
    /// SDF speedup over baseline.
    pub sdf_speedup: f64,
    /// SD traffic normalized to baseline.
    pub sd_traffic: f64,
    /// SDF traffic normalized to baseline.
    pub sdf_traffic: f64,
    /// SDF *off-chip access* energy normalized to baseline (DRAM-access
    /// energy only — the quantity the paper's abstract reports at −29%).
    pub sdf_energy: f64,
    /// Off-chip accesses around the softmax layer under SDF, normalized to
    /// baseline: the attention matrix crosses the softmax boundary four
    /// times in the baseline (`Q·Kᵀ` write, softmax read+write, `P·V` read)
    /// and twice after fusion (`x'` write and read), plus the small IR /
    /// intermediate traffic. Paper §5.1: fusion reduces the softmax layer's
    /// off-chip accesses by 1.58–2.51×.
    pub softmax_traffic_ratio: f64,
}

/// Fig. 8: latency and traffic with SD and SDF applied, per model.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn fig8_sd_sdf(
    device: &DeviceSpec,
    seq_len: usize,
    batch: usize,
) -> Result<Vec<Fig8Row>, LaunchError> {
    // Fan out over model × strategy (12 independent runs), then regroup the
    // three reports of each model into its row.
    let models = ModelConfig::all_eval_models();
    let strategies = [
        SoftmaxStrategy::Baseline,
        SoftmaxStrategy::Decomposed,
        SoftmaxStrategy::Recomposed,
    ];
    let combos: Vec<(ModelConfig, SoftmaxStrategy)> = models
        .iter()
        .flat_map(|m| strategies.iter().map(move |&s| (m.clone(), s)))
        .collect();
    let reports: Vec<resoftmax_model::RunReport> = parallel_map(&combos, |_, (model, s)| {
        run_inference(
            model,
            &RunParams::new(seq_len).batch(batch).strategy(*s),
            device.clone(),
        )
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for (model, runs) in models.iter().zip(reports.chunks_exact(strategies.len())) {
        let (base, sd, sdf) = (&runs[0], &runs[1], &runs[2]);
        // Softmax-boundary traffic: everything that crosses between the
        // softmax layer and its adjacent MatMuls — the QK output stream, the
        // softmax kernels' own traffic, and the PV input stream.
        let boundary = |r: &resoftmax_model::RunReport| -> f64 {
            r.timeline
                .kernels()
                .iter()
                .map(|k| match k.category {
                    c if c.is_softmax_family() => k.dram_read_bytes + k.dram_write_bytes,
                    KernelCategory::MatMulQk => k.dram_write_bytes,
                    KernelCategory::MatMulPv => k.dram_read_bytes,
                    _ => 0.0,
                })
                .sum()
        };
        let base_softmax_dram = boundary(base);
        let sdf_softmax_dram = boundary(sdf);
        // DRAM-access energy scales with traffic at a constant pJ/byte.
        let pj = device.dram_pj_per_byte;
        rows.push(Fig8Row {
            model: model.name.clone(),
            baseline_ms: base.total_time_s() * 1e3,
            baseline_gb: base.total_dram_bytes() / 1e9,
            sd_speedup: base.total_time_s() / sd.total_time_s(),
            sdf_speedup: base.total_time_s() / sdf.total_time_s(),
            sd_traffic: sd.total_dram_bytes() / base.total_dram_bytes(),
            sdf_traffic: sdf.total_dram_bytes() / base.total_dram_bytes(),
            sdf_energy: (sdf.total_dram_bytes() * pj) / (base.total_dram_bytes() * pj),
            softmax_traffic_ratio: sdf_softmax_dram / base_softmax_dram,
        });
    }
    Ok(rows)
}

/// One point of a Fig. 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Model name.
    pub model: String,
    /// Sequence length of this point.
    pub seq_len: usize,
    /// Batch size of this point.
    pub batch: usize,
    /// SDF speedup over baseline at this point.
    pub sdf_speedup: f64,
    /// Softmax fraction of baseline time at this point.
    pub softmax_frac: f64,
}

/// Fig. 9(a): SDF speedup as a function of sequence length.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn fig9_seq_sweep(
    device: &DeviceSpec,
    seq_lens: &[usize],
) -> Result<Vec<SweepPoint>, LaunchError> {
    let combos: Vec<(ModelConfig, usize)> = ModelConfig::all_eval_models()
        .iter()
        .flat_map(|m| seq_lens.iter().map(move |&l| (m.clone(), l)))
        .collect();
    parallel_map(&combos, |_, (model, l)| sweep_point(device, model, *l, 1))
        .into_iter()
        .collect()
}

/// Fig. 9(b): SDF speedup as a function of batch size.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn fig9_batch_sweep(
    device: &DeviceSpec,
    seq_len: usize,
    batches: &[usize],
) -> Result<Vec<SweepPoint>, LaunchError> {
    let combos: Vec<(ModelConfig, usize)> = ModelConfig::all_eval_models()
        .iter()
        .flat_map(|m| batches.iter().map(move |&b| (m.clone(), b)))
        .collect();
    parallel_map(&combos, |_, (model, b)| {
        sweep_point(device, model, seq_len, *b)
    })
    .into_iter()
    .collect()
}

fn sweep_point(
    device: &DeviceSpec,
    model: &ModelConfig,
    seq_len: usize,
    batch: usize,
) -> Result<SweepPoint, LaunchError> {
    let base = run_inference(model, &RunParams::new(seq_len).batch(batch), device.clone())?;
    let sdf = run_inference(
        model,
        &RunParams::new(seq_len)
            .batch(batch)
            .strategy(SoftmaxStrategy::Recomposed),
        device.clone(),
    )?;
    Ok(SweepPoint {
        model: model.name.clone(),
        seq_len,
        batch,
        sdf_speedup: base.total_time_s() / sdf.total_time_s(),
        softmax_frac: base.softmax_time_fraction(),
    })
}

/// One cell of the §5.1 per-GPU speedup comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpeedupRow {
    /// Device name.
    pub device: String,
    /// Model name.
    pub model: String,
    /// SDF speedup over baseline.
    pub sdf_speedup: f64,
    /// Softmax fraction of baseline time on this device.
    pub softmax_frac: f64,
}

/// §5.1: SDF speedups on all three GPUs for all four models.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
pub fn gpu_speedup_matrix(seq_len: usize) -> Result<Vec<GpuSpeedupRow>, LaunchError> {
    let combos: Vec<(DeviceSpec, ModelConfig)> = DeviceSpec::all_presets()
        .iter()
        .flat_map(|d| {
            ModelConfig::all_eval_models()
                .into_iter()
                .map(move |m| (d.clone(), m))
        })
        .collect();
    parallel_map(&combos, |_, (device, model)| {
        let p = sweep_point(device, model, seq_len, 1)?;
        Ok(GpuSpeedupRow {
            device: device.name.clone(),
            model: model.name.clone(),
            sdf_speedup: p.sdf_speedup,
            softmax_frac: p.softmax_frac,
        })
    })
    .into_iter()
    .collect()
}

/// Table 1: the evaluation GPUs (returned, not hardcoded in the binary, so
/// custom devices show up too).
pub fn table1_devices() -> Vec<DeviceSpec> {
    DeviceSpec::all_presets()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> DeviceSpec {
        DeviceSpec::a100()
    }

    #[test]
    fn fig2_fractions_sum_to_one() {
        let rows = fig2_breakdown(&a100(), 1024).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let sum =
                r.matmul_sda_frac + r.softmax_frac + r.fc_frac + r.feedforward_frac + r.etc_frac;
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", r.model);
            assert!(r.total_ms > 0.0);
        }
    }

    #[test]
    fn fig5_ir_is_small() {
        // Paper: "the proportion of IR is less than 12.5% in terms of time".
        let rows = fig5_sublayers(&a100(), DEFAULT_SEQ_LEN).unwrap();
        for r in &rows {
            assert!(r.ir_time_frac < 0.125, "{}: IR {}", r.model, r.ir_time_frac);
            assert!(
                r.ir_dram_frac < 0.125,
                "{}: IR dram {}",
                r.model,
                r.ir_dram_frac
            );
            let t = r.ls_time_frac + r.ir_time_frac + r.gs_time_frac;
            assert!((t - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig7_ordering() {
        let rows = fig7_libraries(&a100(), DEFAULT_SEQ_LEN).unwrap();
        let get = |lib: &str, model: &str| -> f64 {
            rows.iter()
                .find(|r| r.library == lib && r.model == model)
                .unwrap()
                .total_ms
        };
        // Dense: HG slowest of the big four; TRT ≈ ours.
        assert!(get("HG", "BERT-large") > get("TRT", "BERT-large"));
        let trt = get("TRT", "BERT-large");
        let ours = get("Ours-baseline", "BERT-large");
        assert!((trt - ours).abs() / ours < 0.02, "§4: <1% difference");
        // AutoTVM ≈ 1.49× slower than ours on BERT (§4).
        let tvm_ratio = get("AutoTVM", "BERT-large") / ours;
        assert!(
            (1.25..1.8).contains(&tvm_ratio),
            "AutoTVM ratio {tvm_ratio}"
        );
        // Sparse: DS beats the dense fallbacks; ours ≈ DS.
        assert!(get("DS", "BigBird-large") < get("FT", "BigBird-large"));
        assert!(get("DS", "BigBird-large") < get("TRT", "BigBird-large"));
        let ds = get("DS", "BigBird-large");
        let ours_bb = get("Ours-baseline", "BigBird-large");
        assert!((ours_bb - ds).abs() / ds < 0.10, "§4: within 8%");
    }

    #[test]
    fn fig8_matches_paper_bands() {
        let rows = fig8_sd_sdf(&a100(), DEFAULT_SEQ_LEN, 1).unwrap();
        let by = |m: &str| rows.iter().find(|r| r.model.starts_with(m)).unwrap();
        // SD: hurts dense, helps sparse (paper 0.94 / 0.99 / 1.44 / 1.49)
        assert!((0.85..1.0).contains(&by("BERT").sd_speedup));
        assert!((0.85..1.05).contains(&by("GPT").sd_speedup));
        assert!(by("BigBird").sd_speedup > 1.25);
        assert!(by("Longformer").sd_speedup > 1.25);
        // SDF: all faster (paper 1.25 / 1.12 / 1.57 / 1.65)
        assert!((1.1..1.4).contains(&by("BERT").sdf_speedup));
        assert!((1.02..1.25).contains(&by("GPT").sdf_speedup));
        assert!((1.4..1.8).contains(&by("BigBird").sdf_speedup));
        assert!((1.4..1.8).contains(&by("Longformer").sdf_speedup));
        // Traffic: SD roughly doubles softmax traffic; SDF cuts total.
        for r in &rows {
            assert!(r.sd_traffic > 1.2, "{}: {}", r.model, r.sd_traffic);
            assert!(r.sdf_traffic < 0.8, "{}: {}", r.model, r.sdf_traffic);
            assert!(r.sdf_energy < 1.0);
            // paper: softmax traffic reduced 1.58–2.51x; ours is stronger
            // (only IR remains) — at least that band.
            assert!(
                r.softmax_traffic_ratio < 1.0 / 1.5,
                "{}: softmax traffic ratio {}",
                r.model,
                r.softmax_traffic_ratio
            );
        }
    }

    #[test]
    fn fig9_seq_monotone_for_dense() {
        let pts = fig9_seq_sweep(&a100(), &[1024, 2048, 4096]).unwrap();
        let bert: Vec<_> = pts.iter().filter(|p| p.model.starts_with("BERT")).collect();
        assert!(bert[0].sdf_speedup < bert[2].sdf_speedup, "{bert:?}");
        assert!(bert[0].softmax_frac < bert[2].softmax_frac);
    }

    #[test]
    fn fig9_batch_helps_sparse() {
        let pts = fig9_batch_sweep(&a100(), 4096, &[1, 8]).unwrap();
        let bb: Vec<_> = pts
            .iter()
            .filter(|p| p.model.starts_with("BigBird"))
            .collect();
        assert!(
            bb[1].sdf_speedup >= bb[0].sdf_speedup * 0.98,
            "batch should not hurt sparse speedup: {bb:?}"
        );
    }

    #[test]
    fn gpu_matrix_has_all_cells() {
        let rows = gpu_speedup_matrix(1024).unwrap();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.sdf_speedup > 0.9));
    }

    #[test]
    fn grid_sweep_covers_the_space() {
        let pts = full_grid_sweep(
            &[DeviceSpec::a100()],
            &[512, 1024],
            &[1],
            &[SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed],
        )
        .unwrap();
        assert_eq!(pts.len(), 4 * 2 * 2);
        assert!(pts.iter().all(|p| p.total_ms > 0.0 && p.dram_gb > 0.0));
        // the grid is a function: no duplicate keys
        let mut keys: Vec<String> = pts
            .iter()
            .map(|p| {
                format!(
                    "{}|{}|{}|{}|{}",
                    p.device, p.model, p.strategy, p.seq_len, p.batch
                )
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), pts.len());
    }

    #[test]
    fn table1_is_the_three_gpus() {
        let d = table1_devices();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].name, "A100");
    }
}

/// One cell of the full design-space grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Device name.
    pub device: String,
    /// Model name.
    pub model: String,
    /// Strategy label (`Baseline` / `SD` / `SDF` / `Online`).
    pub strategy: String,
    /// Sequence length.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
    /// Per-iteration latency in milliseconds.
    pub total_ms: f64,
    /// Off-chip traffic in GB.
    pub dram_gb: f64,
    /// Off-chip access energy in joules.
    pub energy_j: f64,
    /// Softmax-family share of time.
    pub softmax_frac: f64,
}

/// Sweeps the full design space — every evaluation model × strategy on the
/// given devices, sequence lengths and batch sizes — returning one row per
/// cell, ready for CSV/JSON export and external plotting.
///
/// # Errors
///
/// Returns [`LaunchError`] if any cell cannot launch.
pub fn full_grid_sweep(
    devices: &[DeviceSpec],
    seq_lens: &[usize],
    batches: &[usize],
    strategies: &[SoftmaxStrategy],
) -> Result<Vec<GridPoint>, LaunchError> {
    let mut combos = Vec::new();
    for device in devices {
        for model in ModelConfig::all_eval_models() {
            for &l in seq_lens {
                for &b in batches {
                    for &s in strategies {
                        combos.push((device.clone(), model.clone(), l, b, s));
                    }
                }
            }
        }
    }
    parallel_map(&combos, |_, (device, model, l, b, s)| {
        let r = run_inference(
            model,
            &RunParams::new(*l).batch(*b).strategy(*s),
            device.clone(),
        )?;
        Ok(GridPoint {
            device: device.name.clone(),
            model: model.name.clone(),
            strategy: s.label().to_owned(),
            seq_len: *l,
            batch: *b,
            total_ms: r.total_time_s() * 1e3,
            dram_gb: r.total_dram_bytes() / 1e9,
            energy_j: r.total_energy_j(),
            softmax_frac: r.softmax_time_fraction(),
        })
    })
    .into_iter()
    .collect()
}
