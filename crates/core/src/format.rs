//! Plain-text table rendering for the experiment binaries.

/// Renders rows as a fixed-width text table with a header and rule.
///
/// # Example
///
/// ```
/// use resoftmax_core::format::render_table;
/// let t = render_table(
///     &["model", "speedup"],
///     &[vec!["BERT".into(), "1.25x".into()]],
/// );
/// assert!(t.contains("BERT"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    out.push_str(&fmt_row(
        &headers.iter().map(ToString::to_string).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup factor.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats milliseconds.
pub fn ms(x: f64) -> String {
    format!("{x:.2} ms")
}

/// Formats bytes as GB with two decimals.
pub fn gb(bytes: f64) -> String {
    format!("{:.2} GB", bytes / 1e9)
}

/// Renders rows as RFC-4180-ish CSV (quoting cells containing commas or
/// quotes), for piping experiment output into plotting scripts.
///
/// # Example
///
/// ```
/// use resoftmax_core::format::render_csv;
/// let csv = render_csv(&["a", "b"], &[vec!["1".into(), "x,y".into()]]);
/// assert_eq!(csv, "a,b\n1,\"x,y\"\n");
/// ```
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with('a'));
        assert!(lines[1].starts_with("---"));
        // columns align: the "1" and "2" start at the same offset
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_quoting() {
        let csv = render_csv(
            &["x", "y"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "a,b".into()],
                vec!["3".into(), "q\"q".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines[2], "2,\"a,b\"");
        assert_eq!(lines[3], "3,\"q\"\"q\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn csv_ragged_panics() {
        let _ = render_csv(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.361), "36.1%");
        assert_eq!(speedup(1.254), "1.25x");
        assert_eq!(ms(12.345), "12.35 ms");
        assert_eq!(gb(2.5e9), "2.50 GB");
    }
}
