//! A numerically executable transformer encoder — the whole-model
//! counterpart of the per-layer equivalence proofs.
//!
//! The cost-model engine (`resoftmax_model`) prices full models but does not
//! compute them; this module *computes* a (small) multi-head encoder with
//! seeded random weights, running its attention under any
//! [`AttentionImpl`] — baseline monolithic softmax, the paper's recomposed
//! pipeline, or the online-softmax extension — and shows the outputs agree.
//! This is the strongest form of the paper's correctness claim: not just
//! softmax-in-isolation, but 24 layers of FC / MHA / LayerNorm / GeLU
//! compounding on top of it.

use resoftmax_kernels::{
    gelu, layernorm_numeric, linear, online_attention, recomposed_attention, reference_attention,
    residual,
};
use resoftmax_tensor::{randn_matrix, Matrix, Scalar, ShapeError};

/// Which attention implementation the encoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionImpl {
    /// Unfused reference: `Q·Kᵀ` → scale → softmax → `P·V`.
    Baseline,
    /// The paper's recomposed pipeline (fused LS → IR → fused GS), with the
    /// given sub-vector length `T`.
    Recomposed {
        /// Sub-vector / tile width.
        t: usize,
    },
    /// Online-softmax fully fused attention with tile width `t`.
    Online {
        /// K/V tile width.
        t: usize,
    },
}

/// Weights of one encoder layer.
#[derive(Debug, Clone)]
struct LayerWeights<T: Scalar> {
    wq: Matrix<T>,
    wk: Matrix<T>,
    wv: Matrix<T>,
    wo: Matrix<T>,
    w1: Matrix<T>,
    w2: Matrix<T>,
    bias_q: Vec<T>,
    bias_k: Vec<T>,
    bias_v: Vec<T>,
    bias_o: Vec<T>,
    bias_1: Vec<T>,
    bias_2: Vec<T>,
    ln1_g: Vec<T>,
    ln1_b: Vec<T>,
    ln2_g: Vec<T>,
    ln2_b: Vec<T>,
}

/// A small numerically executable multi-head transformer encoder.
#[derive(Debug, Clone)]
pub struct ReferenceEncoder<T: Scalar> {
    d_model: usize,
    heads: usize,
    layers: Vec<LayerWeights<T>>,
}

impl<T: Scalar> ReferenceEncoder<T> {
    /// Builds an encoder with seeded random weights.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d_model`.
    pub fn new(layers: usize, d_model: usize, d_ff: usize, heads: usize, seed: u64) -> Self {
        assert!(d_model.is_multiple_of(heads), "heads must divide d_model");
        // Xavier-ish scale keeps activations bounded through 24 layers.
        let w_std = 1.0 / (d_model as f64).sqrt();
        let mk = |rows: usize, cols: usize, s: u64| randn_matrix::<T>(rows, cols, w_std, s);
        let zeros = |n: usize| vec![T::zero(); n];
        let ones = |n: usize| vec![T::one(); n];
        let layers = (0..layers as u64)
            .map(|i| {
                let s = seed.wrapping_mul(1000).wrapping_add(i * 10);
                LayerWeights {
                    wq: mk(d_model, d_model, s),
                    wk: mk(d_model, d_model, s + 1),
                    wv: mk(d_model, d_model, s + 2),
                    wo: mk(d_model, d_model, s + 3),
                    w1: mk(d_model, d_ff, s + 4),
                    w2: mk(d_ff, d_model, s + 5),
                    bias_q: zeros(d_model),
                    bias_k: zeros(d_model),
                    bias_v: zeros(d_model),
                    bias_o: zeros(d_model),
                    bias_1: zeros(d_ff),
                    bias_2: zeros(d_model),
                    ln1_g: ones(d_model),
                    ln1_b: zeros(d_model),
                    ln2_g: ones(d_model),
                    ln2_b: zeros(d_model),
                }
            })
            .collect();
        ReferenceEncoder {
            d_model,
            heads,
            layers,
        }
    }

    /// Runs the full forward pass on an `L × d_model` input.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on dimension mismatch (including a `t` that
    /// does not divide `L` for the tiled implementations).
    pub fn forward(&self, x: &Matrix<T>, attn: AttentionImpl) -> Result<Matrix<T>, ShapeError> {
        let d_head = self.d_model / self.heads;
        let scale = 1.0 / (d_head as f64).sqrt();
        let mut h = x.clone();
        for w in &self.layers {
            // QKV projections.
            let q = linear(&h, &w.wq, &w.bias_q)?;
            let k = linear(&h, &w.wk, &w.bias_k)?;
            let v = linear(&h, &w.wv, &w.bias_v)?;

            // Multi-head attention: split along the hidden axis (§2.1).
            let l = h.rows();
            let mut concat = Matrix::<T>::zeros(l, self.d_model);
            for head in 0..self.heads {
                let qh = q.block(0, head * d_head, l, d_head)?;
                let kh = k.block(0, head * d_head, l, d_head)?;
                let vh = v.block(0, head * d_head, l, d_head)?;
                let out = match attn {
                    AttentionImpl::Baseline => reference_attention(&qh, &kh, &vh, scale, None)?,
                    AttentionImpl::Recomposed { t } => {
                        recomposed_attention(&qh, &kh, &vh, t, scale, None)?.0
                    }
                    AttentionImpl::Online { t } => online_attention(&qh, &kh, &vh, t, scale, None)?,
                };
                concat.write_block(0, head * d_head, &out)?;
            }

            // Output projection, residual, LayerNorm.
            let proj = linear(&concat, &w.wo, &w.bias_o)?;
            let h1 = layernorm_numeric(&residual(&h, &proj)?, &w.ln1_g, &w.ln1_b, 1e-5)?;

            // FeedForward block.
            let ff = linear(&gelu(&linear(&h1, &w.w1, &w.bias_1)?), &w.w2, &w.bias_2)?;
            h = layernorm_numeric(&residual(&h1, &ff)?, &w.ln2_g, &w.ln2_b, 1e-5)?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_fp16::F16;
    use resoftmax_tensor::max_abs_diff;

    #[test]
    fn whole_model_strategy_equivalence_f64() {
        // A miniature BERT: 4 layers, d_model 32, 4 heads, L 32.
        let enc = ReferenceEncoder::<f64>::new(4, 32, 64, 4, 42);
        let x = randn_matrix::<f64>(32, 32, 1.0, 7);
        let base = enc.forward(&x, AttentionImpl::Baseline).unwrap();
        let sdf = enc.forward(&x, AttentionImpl::Recomposed { t: 8 }).unwrap();
        let online = enc.forward(&x, AttentionImpl::Online { t: 8 }).unwrap();
        assert!(
            max_abs_diff(&base, &sdf) < 1e-4,
            "recomposed whole-model diff {}",
            max_abs_diff(&base, &sdf)
        );
        assert!(
            max_abs_diff(&base, &online) < 1e-4,
            "online whole-model diff {}",
            max_abs_diff(&base, &online)
        );
        // outputs are LayerNorm'd: bounded, non-degenerate
        assert!(base.as_slice().iter().all(|v| v.abs() < 10.0));
        assert!(resoftmax_tensor::frobenius_norm(&base) > 1.0);
    }

    #[test]
    fn whole_model_equivalence_survives_fp16() {
        let enc = ReferenceEncoder::<F16>::new(2, 16, 32, 2, 11);
        let x = randn_matrix::<F16>(16, 16, 1.0, 3);
        let base = enc.forward(&x, AttentionImpl::Baseline).unwrap();
        let sdf = enc.forward(&x, AttentionImpl::Recomposed { t: 8 }).unwrap();
        assert!(!base.has_nan());
        assert!(!sdf.has_nan());
        // fp16 compounding over 2 layers of LayerNorm'd activations
        assert!(
            max_abs_diff(&base, &sdf) < 0.1,
            "fp16 whole-model diff {}",
            max_abs_diff(&base, &sdf)
        );
    }

    #[test]
    fn bad_tile_is_an_error_not_a_panic() {
        let enc = ReferenceEncoder::<f64>::new(1, 16, 32, 2, 1);
        let x = randn_matrix::<f64>(30, 16, 1.0, 2); // 30 not divisible by 8
        assert!(enc.forward(&x, AttentionImpl::Recomposed { t: 8 }).is_err());
        assert!(enc.forward(&x, AttentionImpl::Baseline).is_ok());
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn bad_heads_panics() {
        let _ = ReferenceEncoder::<f64>::new(1, 30, 60, 4, 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ReferenceEncoder::<f64>::new(1, 16, 32, 2, 5);
        let b = ReferenceEncoder::<f64>::new(1, 16, 32, 2, 5);
        let x = randn_matrix::<f64>(8, 16, 1.0, 1);
        let ya = a.forward(&x, AttentionImpl::Baseline).unwrap();
        let yb = b.forward(&x, AttentionImpl::Baseline).unwrap();
        assert_eq!(ya, yb);
    }
}
