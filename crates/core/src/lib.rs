//! Softmax recomposition — the paper's primary contribution, as a library.
//!
//! This crate is the public face of the reproduction of *"Accelerating
//! Transformer Networks through Recomposing Softmax Layers"* (IISWC 2022):
//!
//! * **The recomposition itself** — re-exported from `resoftmax-kernels`:
//!   [`decomposed_softmax`] / [`local_softmax`] / [`inter_reduce`] /
//!   [`global_scale`] implement Eq. 2; [`recomposed_attention`] is the fully
//!   fused pipeline of Fig. 6 (`Q·Kᵀ`+LS epilogue → IR → GS+`P·V` prologue).
//! * **Strategies over whole models** — re-exported from `resoftmax-model`:
//!   [`SoftmaxStrategy`] selects Baseline / SD / SDF when building a kernel
//!   schedule, and [`run_inference`] executes it on a simulated GPU.
//! * **Verification** ([`verify`]): measured error of every mathematical
//!   claim (decomposition exactness, fusion exactness, the Eq. 3 backward).
//! * **Experiments** ([`experiments`]): one driver per table/figure of the
//!   paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use resoftmax_core::{
//!     experiments::fig8_sd_sdf, verify::verify_decomposition, DeviceSpec,
//! };
//!
//! // The math: decomposed softmax == monolithic softmax (exact in f64).
//! let eq = verify_decomposition(8, 256, 64, 42);
//! assert!(eq.max_abs_f64 < 1e-13);
//!
//! // The performance: SDF beats the baseline on every model at the
//! // paper's L = 4096 evaluation point.
//! let rows = fig8_sd_sdf(&DeviceSpec::a100(), 4096, 1)?;
//! assert!(rows.iter().all(|r| r.sdf_speedup > 1.0));
//! # Ok::<(), resoftmax_gpusim::LaunchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod format;
pub mod reference_model;
pub mod verify;

pub use resoftmax_gpusim::{
    Breakdown, DeviceSpec, Gpu, KernelCategory, KernelDesc, LaunchError, Timeline,
};
pub use resoftmax_kernels::{
    decomposed_softmax, global_scale, inter_reduce, local_softmax, recomposed_attention,
    reference_attention, softmax_backward, softmax_rows,
};
pub use resoftmax_model::{
    build_schedule, run_inference, LibraryProfile, ModelConfig, RunParams, RunReport,
    SoftmaxStrategy, Workload, WorkloadConfig,
};
