//! A tour of the GPU simulator as a standalone component: occupancy,
//! bandwidth utilization, L2 forwarding, load imbalance, roofline
//! classification and trace export — independent of any transformer.
//!
//! ```text
//! cargo run --release --example simulator_tour
//! ```

use resoftmax::gpusim::roofline::{classify, Bound};
use resoftmax::gpusim::{
    chrome_trace, occupancy, DeviceSpec, Gpu, KernelCategory, KernelDesc, TbGroup, TbShape, TbWork,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::a100();
    println!(
        "device: {} ({} SMs, {:.0} GB/s, {:.0} tensor TFLOPS)\n",
        device.name, device.num_sms, device.mem_bandwidth_gbps, device.fp16_tensor_tflops
    );

    // 1. Occupancy: the same kernel shape under different footprints.
    println!("occupancy of a 256-thread block:");
    for (label, shared, regs) in [
        ("lean (1KB shared, 32 regs)", 1024u32, 32u32),
        ("shared-hungry (64KB)", 64 * 1024, 32),
        ("register-hungry (255 regs)", 1024, 255),
    ] {
        let occ = occupancy(&device, &TbShape::new(256, shared, regs))?;
        println!(
            "  {label:32} -> {} blocks/SM (limited by {:?})",
            occ.tbs_per_sm, occ.limiter
        );
    }

    // 2. Bandwidth utilization: the §5.1 knee.
    let mut gpu = Gpu::new(device.clone());
    println!("\nbandwidth utilization vs memory-active threads:");
    for threads in [4096.0, 16384.0, 65536.0, 262144.0] {
        println!(
            "  {threads:>8.0} threads -> {:.0}% of peak",
            gpu.bandwidth_utilization(threads) * 100.0
        );
    }

    // 3. L2 forwarding: producer/consumer pairs vs a thrashing stream.
    let produce = KernelDesc::builder("produce 8MB", KernelCategory::Other)
        .shape(TbShape::new(256, 0, 32))
        .uniform(1000, TbWork::memory(0.0, 8e6 / 1000.0))
        .writes("intermediate", 8_000_000)
        .build();
    let consume = KernelDesc::builder("consume 8MB", KernelCategory::Other)
        .shape(TbShape::new(256, 0, 32))
        .uniform(1000, TbWork::memory(8e6 / 1000.0, 0.0))
        .reads("intermediate", 8_000_000)
        .build();
    gpu.launch(&produce)?;
    let hit = gpu.launch(&consume)?;
    println!(
        "\nL2 forwarding: consumer after producer reads {} MB from DRAM ({} MB from L2)",
        hit.dram_read_bytes / 1e6,
        hit.l2_hit_bytes / 1e6
    );

    // 4. Load imbalance: a straggler group vs balanced work.
    let mut groups = vec![TbGroup::new(TbWork::memory(100_000.0, 0.0), 215)];
    groups.push(TbGroup::new(TbWork::memory(2_000_000.0, 0.0), 1));
    let imbalanced = KernelDesc::builder("imbalanced", KernelCategory::MatMulPv)
        .shape(TbShape::new(1024, 0, 32))
        .grouped(groups)
        .build();
    let total = 215.0 * 100_000.0 + 2_000_000.0;
    let balanced = KernelDesc::builder("balanced", KernelCategory::MatMulPv)
        .shape(TbShape::new(1024, 0, 32))
        .uniform(216, TbWork::memory(total / 216.0, 0.0))
        .build();
    let t_imb = gpu.launch(&imbalanced)?.time_s;
    let t_bal = gpu.launch(&balanced)?.time_s;
    println!(
        "\nload imbalance: one 20x straggler makes the same bytes take {:.1}x longer",
        t_imb / t_bal
    );

    // 5. Roofline classification of what we just ran.
    println!("\nroofline classification:");
    for k in gpu.timeline().kernels() {
        let p = classify(&device, k);
        let b = match p.bound {
            Bound::Memory => "memory-bound",
            Bound::Compute => "compute-bound",
            Bound::LaunchOverhead => "launch-bound",
        };
        println!(
            "  {:14} {:.2} FLOP/B -> {b} ({:.0}% of roofline)",
            k.name,
            p.intensity,
            p.achieved_fraction * 100.0
        );
    }

    // 6. Export the whole session for chrome://tracing.
    let json = chrome_trace::to_chrome_trace(gpu.timeline());
    std::fs::write("simulator_tour_trace.json", &json)?;
    println!(
        "\nwrote simulator_tour_trace.json ({} events) — open in chrome://tracing",
        gpu.timeline().len()
    );
    Ok(())
}
