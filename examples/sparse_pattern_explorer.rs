//! Sparse-attention pattern explorer: the block-sparse structures behind
//! BigBird and Longformer (§3.4), the statistics that drive their kernel
//! performance, and the §5.1 utilization effect of softmax decomposition.
//!
//! ```text
//! cargo run --release --example sparse_pattern_explorer
//! ```

use resoftmax::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pattern structure across sequence lengths.
    println!("block-sparse pattern statistics (block = 64):\n");
    for l in [1024usize, 4096, 8192] {
        let bb = pattern::bigbird(l, &BigBirdConfig::default());
        let lf = pattern::longformer(l, &LongformerConfig::default());
        let st = pattern::strided(l, 64, 1, 8);
        println!("L = {l}:");
        println!("  BigBird    {}", PatternStats::of(&bb));
        println!("  Longformer {}", PatternStats::of(&lf));
        println!("  Strided    {}", PatternStats::of(&st));
    }

    // 2. A tiny ASCII render of the BigBird pattern at L = 1024.
    let layout = pattern::bigbird(1024, &BigBirdConfig::default());
    println!("\nBigBird block mask at L = 1024 (█ = retained block):");
    for br in 0..layout.n_blocks() {
        let row: String = (0..layout.n_blocks())
            .map(|bc| if layout.is_set(br, bc) { '█' } else { '·' })
            .collect();
        println!("  {row}");
    }

    // 3. Numerics: block-sparse attention equals masked dense attention.
    let l = 256;
    let layout = pattern::bigbird(
        l,
        &BigBirdConfig {
            block: 32,
            ..Default::default()
        },
    );
    let q = randn_matrix::<f64>(l, 16, 1.0, 1);
    let k = randn_matrix::<f64>(l, 16, 1.0, 2);
    let v = randn_matrix::<f64>(l, 16, 1.0, 3);
    let sparse_out = spmm(&block_sparse_softmax(&sddmm(&q, &k, &layout)?), &v)?;
    let mask = layout.element_mask();
    let dense_scores = apply_mask(&matmul(&q, &transpose(&k))?, &mask);
    let dense_out = matmul(&softmax_rows(&dense_scores), &v)?;
    println!(
        "\nblock-sparse vs masked-dense attention, max |Δ| = {:.2e}",
        max_abs_diff(&sparse_out, &dense_out)
    );

    // 4. §5.1: why decomposition alone speeds sparse models up — the
    //    baseline softmax's worst-case allocation starves bandwidth.
    let device = DeviceSpec::a100();
    let support_fraction =
        PatternStats::of(&pattern::bigbird(4096, &BigBirdConfig::default())).row_mean * 64.0
            / 4096.0;
    println!(
        "\nBigBird at L=4096: a mean row touches {:.0}% of its allocated span.",
        support_fraction * 100.0
    );
    for m in [
        ModelConfig::bigbird_large(),
        ModelConfig::longformer_large(),
    ] {
        let base = run_inference(&m, &RunParams::new(4096), device.clone())?;
        let sd = run_inference(
            &m,
            &RunParams::new(4096).strategy(SoftmaxStrategy::Decomposed),
            device.clone(),
        )?;
        println!(
            "  {:<18} SD alone: {:.2}x speedup despite {:.2}x the softmax traffic",
            m.name,
            base.total_time_s() / sd.total_time_s(),
            sd.total_dram_bytes() / base.total_dram_bytes(),
        );
    }
    Ok(())
}
