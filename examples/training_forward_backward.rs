//! §6: using the recomposed softmax in training.
//!
//! The forward pass runs the fused pipeline (never materializing the softmax
//! *input* off-chip); the backward pass uses Eq. 3, which needs only the
//! softmax *output*. This example trains a toy attention layer to reproduce
//! a target mapping, demonstrating that gradients flow correctly through the
//! recomposed forward pass.
//!
//! ```text
//! cargo run --release --example training_forward_backward
//! ```

use resoftmax::prelude::*;
use resoftmax::tensor::{matmul_transpose_b, scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (l, d) = (32, 8);
    let sc = 1.0 / (d as f64).sqrt();
    let q = randn_matrix::<f64>(l, d, 0.5, 1);
    let k = randn_matrix::<f64>(l, d, 0.5, 2);
    let v = randn_matrix::<f64>(l, d, 0.5, 3);
    let target = randn_matrix::<f64>(l, d, 0.5, 4);

    // Forward with the recomposed pipeline; backward via Eq. 3 on P = GS(X').
    // We optimize the attention *scores* S directly (treating S as the
    // parameter keeps the demo focused on the softmax gradient path).
    let mut s = scale(&matmul_transpose_b(&q, &k)?, sc);
    let lr = 2.0;
    println!("training the attention scores to match a target (Eq. 3 backward):\n");
    for step in 0..30 {
        // Forward: decomposed softmax (≡ fused LS→IR→GS numerically).
        let p = decomposed_softmax(&s, 8)?;
        let out = matmul(&p, &v)?;

        // Loss = ½‖out − target‖².
        let mut loss = 0.0;
        let mut d_out = Matrix::<f64>::zeros(l, d);
        for r in 0..l {
            for c in 0..d {
                let e = out.get(r, c) - target.get(r, c);
                loss += 0.5 * e * e;
                d_out.set(r, c, e);
            }
        }
        if step % 5 == 0 {
            println!("  step {step:2}: loss = {loss:.6}");
        }

        // Backward: dP = dOut · Vᵀ, then Eq. 3 needs only P (the softmax
        // OUTPUT) — the input S was never stored by the forward pass.
        let d_p = matmul_transpose_b(&d_out, &v)?;
        let d_s = softmax_backward(&p, &d_p);

        for (r, c, g) in d_s.clone().iter() {
            s.set(r, c, s.get(r, c) - lr * g);
        }
    }
    let final_p = decomposed_softmax(&s, 8)?;
    let final_out = matmul(&final_p, &v)?;
    println!(
        "\nfinal max |out − target| = {:.4} (was {:.4} at init)",
        max_abs_diff(&final_out, &target),
        {
            let p0 = decomposed_softmax(&scale(&matmul_transpose_b(&q, &k)?, sc), 8)?;
            max_abs_diff(&matmul(&p0, &v)?, &target)
        }
    );
    println!(
        "gradients flowed through the recomposed softmax without its input ever being stored."
    );
    Ok(())
}
