//! Quickstart: recompose one attention layer's softmax and see both halves
//! of the paper's claim — the math is exact, and the GPU time drops.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use resoftmax::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The mathematics (paper Eq. 2): decomposing softmax into
    //    LS -> IR -> GS changes nothing about the result.
    // ------------------------------------------------------------------
    let x = randn_matrix::<f64>(8, 512, 2.0, 42);
    let monolithic = softmax_rows(&x);
    let decomposed = decomposed_softmax(&x, 64)?;
    println!(
        "decomposed vs monolithic softmax, max |Δ| = {:.2e}",
        max_abs_diff(&monolithic, &decomposed)
    );

    // ------------------------------------------------------------------
    // 2. The fused pipeline (paper Fig. 6): QKᵀ+LS epilogue -> IR ->
    //    GS+PV prologue equals the unfused attention layer.
    // ------------------------------------------------------------------
    let (l, d_head, t) = (256, 64, 64);
    let scale = 1.0 / (d_head as f64).sqrt();
    let q = randn_matrix::<f64>(l, d_head, 1.0, 1);
    let k = randn_matrix::<f64>(l, d_head, 1.0, 2);
    let v = randn_matrix::<f64>(l, d_head, 1.0, 3);
    let reference = reference_attention(&q, &k, &v, scale, None)?;
    let (fused, ir) = recomposed_attention(&q, &k, &v, t, scale, None)?;
    println!(
        "fused vs unfused attention,          max |Δ| = {:.2e}",
        max_abs_diff(&reference, &fused)
    );
    let r_sum: f64 = ir.r_prime.row(0).iter().sum();
    println!("reconstruction factors r' sum to {r_sum:.12} per row");

    // ------------------------------------------------------------------
    // 3. The performance (paper Fig. 8): run BERT-large at L = 4096 on a
    //    simulated A100 with and without recomposition.
    // ------------------------------------------------------------------
    let model = ModelConfig::bert_large();
    let baseline = Session::builder()
        .model(model.clone())
        .device(DeviceSpec::a100())
        .params(RunParams::new(4096))
        .build()?
        .run()?;
    let sdf = Session::builder()
        .model(model)
        .device(DeviceSpec::a100())
        .params(RunParams::new(4096))
        .strategy(SoftmaxStrategy::Recomposed)
        .build()?
        .run()?;
    println!(
        "\nBERT-large, L=4096, A100 (simulated):\n  baseline {:.2} ms ({:.0}% in softmax), recomposed {:.2} ms -> {:.2}x speedup",
        baseline.total_time_s() * 1e3,
        baseline.softmax_time_fraction() * 100.0,
        sdf.total_time_s() * 1e3,
        baseline.total_time_s() / sdf.total_time_s()
    );
    println!(
        "  off-chip traffic {:.1} GB -> {:.1} GB",
        baseline.total_dram_bytes() / 1e9,
        sdf.total_dram_bytes() / 1e9
    );
    Ok(())
}
