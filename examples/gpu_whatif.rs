//! What-if: softmax recomposition on hypothetical future GPUs.
//!
//! §2.3 argues that "due to the memory wall problem, where the memory
//! bandwidth is less scalable compared to the computational power, the
//! softmax layers could take even more of the total execution time in future
//! GPUs." This example builds custom [`DeviceSpec`]s scaling compute and
//! bandwidth independently and shows where recomposition matters most.
//!
//! ```text
//! cargo run --release --example gpu_whatif
//! ```

use resoftmax::prelude::*;

fn scaled_a100(name: &str, compute: f64, bandwidth: f64) -> DeviceSpec {
    let mut d = DeviceSpec::a100();
    name.clone_into(&mut d.name);
    d.fp16_cuda_tflops *= compute;
    d.fp16_tensor_tflops *= compute;
    d.mem_bandwidth_gbps *= bandwidth;
    // Latency hiding needs proportionally more outstanding requests.
    d.mem_saturation_threads *= bandwidth;
    d
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = [
        scaled_a100("A100 (today)", 1.0, 1.0),
        scaled_a100("2x compute", 2.0, 1.0),
        scaled_a100("4x compute", 4.0, 1.0),
        scaled_a100("4x compute, 2x BW", 4.0, 2.0),
        scaled_a100("2x BW only", 1.0, 2.0),
    ];
    let model = ModelConfig::bert_large();

    println!("BERT-large, L = 4096, batch 1 — the memory-wall trajectory:\n");
    println!(
        "{:<20} {:>10} {:>14} {:>13}",
        "device", "baseline", "softmax share", "SDF speedup"
    );
    for device in devices {
        device.validate()?;
        let base = run_inference(&model, &RunParams::new(4096), device.clone())?;
        let sdf = run_inference(
            &model,
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
            device.clone(),
        )?;
        println!(
            "{:<20} {:>7.2} ms {:>13.1}% {:>12.2}x",
            device.name,
            base.total_time_s() * 1e3,
            base.softmax_time_fraction() * 100.0,
            base.total_time_s() / sdf.total_time_s()
        );
    }
    println!("\nAs compute scales past bandwidth, the softmax share grows and");
    println!("recomposition's payoff rises — the paper's future-GPU argument.");
    Ok(())
}
