//! Long-document inference: the paper's motivating scenario (§2.2).
//!
//! A synthetic TriviaQA-style corpus is generated; we show (1) why long
//! sequence lengths matter (token coverage), (2) what they cost (per-model
//! latency vs L), and (3) what recomposition buys across the whole corpus.
//!
//! ```text
//! cargo run --release --example long_document_inference
//! ```

use resoftmax::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = Workload::generate(&WorkloadConfig::default());
    println!(
        "Synthetic long-document corpus: {} documents (TriviaQA substitute)\n",
        corpus.len()
    );

    // 1. §2.2: longer L keeps more of each document.
    println!("sequence length -> token coverage / documents truncated:");
    for l in [512usize, 1024, 2048, 4096, 8192] {
        println!(
            "  L={l:5}: {:5.1}% of tokens kept, {:4.1}% of documents truncated",
            corpus.token_coverage(l) * 100.0,
            corpus.truncated_fraction(l) * 100.0
        );
    }

    // 2. What long sequences cost, and what recomposition recovers.
    let device = DeviceSpec::a100();
    println!("\nper-iteration latency on {} (batch 1):", device.name);
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>9}",
        "model", "L", "baseline", "recomposed", "speedup"
    );
    for model in [
        ModelConfig::bert_large(),
        ModelConfig::longformer_large(),
        ModelConfig::bigbird_large(),
    ] {
        for l in [512usize, 4096] {
            let base = run_inference(&model, &RunParams::new(l), device.clone())?;
            let sdf = run_inference(
                &model,
                &RunParams::new(l).strategy(SoftmaxStrategy::Recomposed),
                device.clone(),
            )?;
            println!(
                "{:<18} {:>6} {:>9.2} ms {:>9.2} ms {:>8.2}x",
                model.name,
                l,
                base.total_time_s() * 1e3,
                sdf.total_time_s() * 1e3,
                base.total_time_s() / sdf.total_time_s()
            );
        }
    }

    // 3. Whole-corpus view: batched Longformer at L = 4096.
    let model = ModelConfig::longformer_large();
    let batch = 8;
    let iters = corpus.iterations(batch);
    let base = run_inference(&model, &RunParams::new(4096).batch(batch), device.clone())?;
    let sdf = run_inference(
        &model,
        &RunParams::new(4096)
            .batch(batch)
            .strategy(SoftmaxStrategy::Recomposed),
        device,
    )?;
    println!("\ncorpus sweep ({iters} iterations of batch {batch}, Longformer-large, L=4096):");
    println!(
        "  baseline  {:.1} s   recomposed {:.1} s   ({:.2}x, {:.1} GB less off-chip traffic per pass)",
        base.total_time_s() * iters as f64,
        sdf.total_time_s() * iters as f64,
        base.total_time_s() / sdf.total_time_s(),
        (base.total_dram_bytes() - sdf.total_dram_bytes()) * iters as f64 / 1e9
    );
    Ok(())
}
