//! `resoftmax` — a full reproduction of *"Accelerating Transformer Networks
//! through Recomposing Softmax Layers"* (IISWC 2022) in Rust.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`obs`] — zero-overhead-when-disabled observability: spans, counters,
//!   and the unified chrome-trace export (see README "Observability").
//! * [`fp16`] — bit-exact software binary16.
//! * [`tensor`] — matrices, tiles, reference linear algebra.
//! * [`gpusim`] — the GPU performance/energy simulator standing in for the
//!   paper's A100 / RTX 3090 / T4 (see `DESIGN.md`).
//! * [`sparse`] — block-sparse layouts and attention patterns.
//! * [`kernels`] — the kernel catalog: numerics + cost profiles.
//! * [`model`] — transformer configs, schedules, the inference engine.
//! * [`serve`] — the continuous-batching serving simulator: single-replica
//!   `run_serve` plus the [`serve::FleetBuilder`] multi-replica cluster
//!   (routing, KV migration over a modeled interconnect, fault scenarios).
//! * [`core`] — the paper-facing API: recomposition, verification,
//!   experiment drivers for every table and figure.
//!
//! Start with [`prelude`] and `examples/quickstart.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use resoftmax_core as core;
pub use resoftmax_fp16 as fp16;
pub use resoftmax_gpusim as gpusim;
pub use resoftmax_kernels as kernels;
pub use resoftmax_model as model;
pub use resoftmax_obs as obs;
pub use resoftmax_serve as serve;
pub use resoftmax_sparse as sparse;
pub use resoftmax_tensor as tensor;

/// The items almost every user of the library needs.
pub mod prelude {
    pub use resoftmax_core::experiments;
    pub use resoftmax_core::reference_model::{AttentionImpl, ReferenceEncoder};
    pub use resoftmax_core::verify;
    pub use resoftmax_fp16::F16;
    pub use resoftmax_gpusim::{DeviceSpec, Gpu, KernelCategory, Timeline};
    pub use resoftmax_kernels::{
        apply_mask, causal_mask, decomposed_softmax, global_scale, inter_reduce, local_softmax,
        recomposed_attention, reference_attention, softmax_backward, softmax_rows,
    };
    pub use resoftmax_model::{
        build_schedule, run_decode_step, run_inference, run_seq2seq, run_training_iteration, Error,
        LibraryProfile, ModelConfig, RunParams, RunReport, Seq2SeqConfig, Session, SessionBuilder,
        SoftmaxStrategy, Workload, WorkloadConfig,
    };
    pub use resoftmax_obs::{
        counter, float_counter, metrics_snapshot, recorder, span, ChromeTraceSink, JsonMetricsSink,
        SummarySink,
    };
    // `Error` already names the model error above; the serve error keeps its
    // crate prefix as `ServeError`.
    pub use resoftmax_serve::{
        run_serve, run_serve_with, Error as ServeError, Fleet, FleetBuilder, FleetEvent,
        FleetReport, LinkSpec, ReplicaStats, RouterPolicy, ServeConfig, ServeReport,
    };
    pub use resoftmax_sparse::{
        block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig, BlockLayout, BlockSparseMatrix,
        LongformerConfig, PatternStats,
    };
    pub use resoftmax_tensor::{
        matmul, max_abs_diff, randn_matrix, transpose, Matrix, Scalar, TileDims,
    };
}
