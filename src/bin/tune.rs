//! Schedule autotuner driver: `cargo run --release --bin tune -- [--smoke]`.
//!
//! Thin wrapper so the tuner is reachable from the workspace root package;
//! the logic (workload grid, determinism gate, cache handling, report) lives
//! in [`resoftmax_bench::tune_main`].

fn main() {
    resoftmax_bench::tune_main();
}
