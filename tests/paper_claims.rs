//! End-to-end integration tests asserting the paper's headline claims on the
//! public API, crossing every crate boundary: fp16 → tensor → sparse →
//! kernels → gpusim → model → core.

use resoftmax::prelude::*;

const L: usize = 4096;

fn a100() -> DeviceSpec {
    DeviceSpec::a100()
}

fn speedup(model: &ModelConfig, strategy: SoftmaxStrategy, device: &DeviceSpec) -> f64 {
    let base = run_inference(model, &RunParams::new(L), device.clone()).unwrap();
    let variant =
        run_inference(model, &RunParams::new(L).strategy(strategy), device.clone()).unwrap();
    base.total_time_s() / variant.total_time_s()
}

/// Abstract: "softmax recomposition achieves up to 1.25×, 1.12×, 1.57×, and
/// 1.65× speedups in inferring BERT, GPT-Neo, BigBird, and Longformer".
#[test]
fn headline_speedups_within_bands() {
    let paper = [
        (ModelConfig::bert_large(), 1.25),
        (ModelConfig::gpt_neo_1_3b(), 1.12),
        (ModelConfig::bigbird_large(), 1.57),
        (ModelConfig::longformer_large(), 1.65),
    ];
    for (model, expected) in paper {
        let got = speedup(&model, SoftmaxStrategy::Recomposed, &a100());
        assert!(
            (got - expected).abs() / expected < 0.12,
            "{}: measured {got:.2}x vs paper {expected}x",
            model.name
        );
    }
}

/// §2.3: at L = 4096 on A100, BERT's SDA block uses ~68% of total time and
/// the softmax layer ~36%; even sparse models keep softmax above 40%.
#[test]
fn breakdown_fractions_match_fig2() {
    let bert = run_inference(&ModelConfig::bert_large(), &RunParams::new(L), a100()).unwrap();
    assert!(
        (bert.sda_time_fraction() - 0.68).abs() < 0.08,
        "{}",
        bert.sda_time_fraction()
    );
    assert!((bert.softmax_time_fraction() - 0.36).abs() < 0.05);

    for sparse in [
        ModelConfig::bigbird_large(),
        ModelConfig::longformer_large(),
    ] {
        let r = run_inference(&sparse, &RunParams::new(L), a100()).unwrap();
        assert!(
            r.softmax_time_fraction() > 0.37,
            "{}: softmax frac {}",
            sparse.name,
            r.softmax_time_fraction()
        );
    }
}

/// §5.1: SD alone slows dense models (0.94×, 0.99×) and speeds sparse models
/// (1.44×, 1.49×).
#[test]
fn sd_splits_dense_and_sparse() {
    assert!(
        speedup(
            &ModelConfig::bert_large(),
            SoftmaxStrategy::Decomposed,
            &a100()
        ) < 1.0
    );
    assert!(
        speedup(
            &ModelConfig::gpt_neo_1_3b(),
            SoftmaxStrategy::Decomposed,
            &a100()
        ) < 1.0
    );
    let bb = speedup(
        &ModelConfig::bigbird_large(),
        SoftmaxStrategy::Decomposed,
        &a100(),
    );
    let lf = speedup(
        &ModelConfig::longformer_large(),
        SoftmaxStrategy::Decomposed,
        &a100(),
    );
    assert!((1.3..1.6).contains(&bb), "BigBird SD {bb}");
    assert!((1.3..1.6).contains(&lf), "Longformer SD {lf}");
}

/// §3.3 / Fig. 6: fusion halves the attention-matrix traffic around the
/// softmax layer (4 crossings → 2).
#[test]
fn fusion_halves_softmax_boundary_traffic() {
    let rows = experiments::fig8_sd_sdf(&a100(), L, 1).unwrap();
    for r in &rows {
        let cut = 1.0 / r.softmax_traffic_ratio;
        assert!(
            (1.58..2.51).contains(&cut),
            "{}: softmax boundary cut {cut:.2} outside the paper's 1.58–2.51×",
            r.model
        );
    }
}

/// Abstract: 28% average latency reduction and 29% average off-chip access
/// energy reduction.
#[test]
fn average_latency_and_energy_reductions() {
    let rows = experiments::fig8_sd_sdf(&a100(), L, 1).unwrap();
    let avg_latency: f64 =
        rows.iter().map(|r| 1.0 - 1.0 / r.sdf_speedup).sum::<f64>() / rows.len() as f64;
    let avg_energy: f64 = rows.iter().map(|r| 1.0 - r.sdf_energy).sum::<f64>() / rows.len() as f64;
    assert!(
        (0.20..0.34).contains(&avg_latency),
        "latency cut {avg_latency}"
    );
    assert!(
        (0.22..0.45).contains(&avg_energy),
        "energy cut {avg_energy}"
    );
}

/// Fig. 9(a): SDF speedup grows with sequence length for every model.
#[test]
fn speedup_grows_with_sequence_length() {
    for model in ModelConfig::all_eval_models() {
        let s2k = {
            let base = run_inference(&model, &RunParams::new(2048), a100()).unwrap();
            let sdf = run_inference(
                &model,
                &RunParams::new(2048).strategy(SoftmaxStrategy::Recomposed),
                a100(),
            )
            .unwrap();
            base.total_time_s() / sdf.total_time_s()
        };
        let s8k = {
            let base = run_inference(&model, &RunParams::new(8192), a100()).unwrap();
            let sdf = run_inference(
                &model,
                &RunParams::new(8192).strategy(SoftmaxStrategy::Recomposed),
                a100(),
            )
            .unwrap();
            base.total_time_s() / sdf.total_time_s()
        };
        assert!(s8k > s2k, "{}: {s2k} -> {s8k}", model.name);
    }
}

/// §5.1 cross-GPU: every model speeds up on every GPU, with the sparse
/// models gaining the most on T4 and the A100 ordering preserved.
#[test]
fn cross_gpu_speedups() {
    let rows = experiments::gpu_speedup_matrix(L).unwrap();
    assert_eq!(rows.len(), 12);
    for r in &rows {
        assert!(
            r.sdf_speedup > 1.0,
            "{} {} {}",
            r.device,
            r.model,
            r.sdf_speedup
        );
    }
    let get = |d: &str, m: &str| {
        rows.iter()
            .find(|r| r.device == d && r.model.starts_with(m))
            .unwrap()
            .sdf_speedup
    };
    // GPT-Neo gains least everywhere; sparse gain more than BERT everywhere.
    for dev in ["A100", "RTX 3090", "T4"] {
        assert!(get(dev, "GPT") < get(dev, "BERT"));
        assert!(get(dev, "BigBird") > get(dev, "BERT"));
    }
    // 3090 gains less than A100 on dense (paper: smaller softmax share).
    assert!(get("RTX 3090", "BERT") < get("A100", "BERT"));
}

/// The numerics behind it all, exercised through the umbrella prelude.
#[test]
fn recomposition_is_numerically_faithful() {
    let eq = verify::verify_decomposition(16, 512, 64, 99);
    assert!(eq.max_abs_f64 < 1e-13);
    assert!(eq.max_ulp_fp16 <= 8);
    let fr = verify::verify_fusion(256, 64, 64, 100);
    assert!(fr.max_abs_f64 < 1e-5);
    assert!(verify::verify_backward(2, 32, 101) < 1e-5);
}

/// Block-sparse attention through the full public path equals masked dense.
#[test]
fn sparse_attention_end_to_end() {
    let l = 128;
    let layout = pattern::longformer(
        l,
        &LongformerConfig {
            block: 16,
            window: 64,
            global_tokens: 16,
        },
    );
    let q = randn_matrix::<f64>(l, 8, 1.0, 1);
    let k = randn_matrix::<f64>(l, 8, 1.0, 2);
    let v = randn_matrix::<f64>(l, 8, 1.0, 3);
    let sparse_out = spmm(&block_sparse_softmax(&sddmm(&q, &k, &layout).unwrap()), &v).unwrap();
    let mask = layout.element_mask();
    let dense = matmul(
        &softmax_rows(&apply_mask(&matmul(&q, &transpose(&k)).unwrap(), &mask)),
        &v,
    )
    .unwrap();
    assert!(max_abs_diff(&sparse_out, &dense) < 1e-9);
}

/// Half precision end to end: recomposed attention in bit-exact binary16
/// stays finite and close to the f64 oracle even with large scores.
#[test]
fn fp16_pipeline_is_safe() {
    let l = 128;
    let q = randn_matrix::<F16>(l, 32, 2.0, 5);
    let k = randn_matrix::<F16>(l, 32, 2.0, 6);
    let v = randn_matrix::<F16>(l, 32, 1.0, 7);
    let scale = 1.0 / 32f64.sqrt();
    let (out, ir) = recomposed_attention(&q, &k, &v, 32, scale, None).unwrap();
    assert!(!out.has_nan());
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
    for r in 0..l {
        let s: f64 = ir.r_prime.row(r).iter().map(|x| x.to_f64()).sum();
        assert!((s - 1.0).abs() < 0.05, "row {r}: Σr' = {s}");
    }
}
