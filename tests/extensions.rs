//! Integration tests of the extensions beyond the paper: the online-softmax
//! strategy, the training-iteration cost model, the Sparse Transformer
//! preset, trace export, and failure handling at the system boundary.

use resoftmax::gpusim::chrome_trace::to_chrome_trace;
use resoftmax::model::{build_training_schedule, run_training_iteration};
use resoftmax::prelude::*;

const L: usize = 4096;

fn a100() -> DeviceSpec {
    DeviceSpec::a100()
}

/// The online-softmax strategy dominates SDF at long sequences on dense
/// models (the FlashAttention headroom), and both beat the baseline.
#[test]
fn online_dominates_sdf_at_long_sequences() {
    let model = ModelConfig::bert_large();
    let base = run_inference(&model, &RunParams::new(L), a100()).unwrap();
    let sdf = run_inference(
        &model,
        &RunParams::new(L).strategy(SoftmaxStrategy::Recomposed),
        a100(),
    )
    .unwrap();
    let online = run_inference(
        &model,
        &RunParams::new(L).strategy(SoftmaxStrategy::OnlineFused),
        a100(),
    )
    .unwrap();
    assert!(sdf.total_time_s() < base.total_time_s());
    assert!(online.total_time_s() < sdf.total_time_s());
    // online eliminates the attention matrix: traffic collapses
    assert!(online.total_dram_bytes() < 0.25 * base.total_dram_bytes());
}

/// The online numeric kernel agrees with the recomposed pipeline end to end
/// through the public prelude.
#[test]
fn online_numerics_through_prelude() {
    use resoftmax::kernels::online_attention;
    let (l, d) = (128, 32);
    let scale = 1.0 / (d as f64).sqrt();
    let q = randn_matrix::<f64>(l, d, 1.0, 1);
    let k = randn_matrix::<f64>(l, d, 1.0, 2);
    let v = randn_matrix::<f64>(l, d, 1.0, 3);
    let (sdf, _) = recomposed_attention(&q, &k, &v, 32, scale, None).unwrap();
    let online = online_attention(&q, &k, &v, 32, scale, None).unwrap();
    assert!(max_abs_diff(&sdf, &online) < 1e-5);
}

/// Training: recomposition speeds up a full fwd+bwd iteration and the
/// backward pass contains no monolithic softmax kernel.
#[test]
fn training_iteration_gains() {
    let model = ModelConfig::bert_large();
    let base = run_training_iteration(&model, &RunParams::new(L), a100()).unwrap();
    let sdf = run_training_iteration(
        &model,
        &RunParams::new(L).strategy(SoftmaxStrategy::Recomposed),
        a100(),
    )
    .unwrap();
    assert!(base.total_time_s() / sdf.total_time_s() > 1.05);
    // no Softmax-category kernel remains anywhere in the recomposed schedule
    let schedule = build_training_schedule(
        &model,
        &RunParams::new(L).strategy(SoftmaxStrategy::Recomposed),
    );
    assert!(!schedule
        .iter()
        .any(|k| k.category == KernelCategory::Softmax));
    // but the baseline has one per layer in each direction
    let baseline_schedule = build_training_schedule(&model, &RunParams::new(L));
    let n_softmax = baseline_schedule
        .iter()
        .filter(|k| k.category == KernelCategory::Softmax)
        .count();
    assert_eq!(n_softmax, 2 * model.layers);
}

/// The Sparse Transformer preset runs under all paper strategies and
/// benefits from recomposition like the other sparse models.
#[test]
fn sparse_transformer_model_works() {
    let model = ModelConfig::sparse_transformer();
    let base = run_inference(&model, &RunParams::new(L), a100()).unwrap();
    let sd = run_inference(
        &model,
        &RunParams::new(L).strategy(SoftmaxStrategy::Decomposed),
        a100(),
    )
    .unwrap();
    let sdf = run_inference(
        &model,
        &RunParams::new(L).strategy(SoftmaxStrategy::Recomposed),
        a100(),
    )
    .unwrap();
    assert!(
        sd.total_time_s() < base.total_time_s(),
        "SD helps sparse models"
    );
    assert!(sdf.total_time_s() < sd.total_time_s());
}

/// Chrome-trace export round-trips through a JSON parser and covers the
/// whole schedule.
#[test]
fn trace_export_is_complete() {
    let report = run_inference(&ModelConfig::bert_large(), &RunParams::new(1024), a100()).unwrap();
    let json = to_chrome_trace(&report.timeline);
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = parsed.as_array().unwrap();
    assert_eq!(events.len(), report.timeline.len());
    let total_dur: f64 = events
        .iter()
        .map(|e| e["dur"].as_f64().unwrap())
        .sum::<f64>()
        / 1e6;
    // durations are serialized at nanosecond granularity: allow the
    // accumulated rounding across the schedule
    assert!((total_dur - report.total_time_s()).abs() < 1e-6);
}

/// A device too small for a kernel's thread block produces a LaunchError,
/// not a wrong simulation.
#[test]
fn undersized_device_errors_cleanly() {
    let mut tiny = DeviceSpec::t4();
    tiny.l1_kb_per_sm = 4; // monolithic softmax at L=4096 needs 8KB shared
    let result = run_inference(&ModelConfig::bert_large(), &RunParams::new(L), tiny);
    assert!(result.is_err());
    let msg = result.unwrap_err().to_string();
    assert!(msg.contains("does not fit"), "{msg}");
}

/// Workload statistics drive the documented motivation numbers.
#[test]
fn workload_motivates_long_sequences() {
    let w = Workload::generate(&WorkloadConfig::default());
    assert!(w.token_coverage(4096) > 2.0 * w.token_coverage(512));
    assert!(w.truncated_fraction(512) > 0.9);
}

/// Strategy labels are stable (used by reports and the CLI binaries).
#[test]
fn strategy_labels() {
    assert_eq!(SoftmaxStrategy::Baseline.label(), "Baseline");
    assert_eq!(SoftmaxStrategy::Decomposed.label(), "SD");
    assert_eq!(SoftmaxStrategy::Recomposed.label(), "SDF");
    assert_eq!(SoftmaxStrategy::OnlineFused.label(), "Online");
    assert_eq!(SoftmaxStrategy::all().len(), 3, "paper's own set");
}

/// The encoder–decoder extension gains from recomposition on both attention
/// kinds, and more at longer source lengths.
#[test]
fn seq2seq_gains_grow_with_source_length() {
    use resoftmax::model::run_seq2seq;
    let cfg = Seq2SeqConfig::vanilla_transformer_big();
    let speedup = |src: usize, tgt: usize| -> f64 {
        let base = run_seq2seq(&cfg, src, tgt, &RunParams::new(src), a100()).unwrap();
        let sdf = run_seq2seq(
            &cfg,
            src,
            tgt,
            &RunParams::new(src).strategy(SoftmaxStrategy::Recomposed),
            a100(),
        )
        .unwrap();
        base.total_time_s() / sdf.total_time_s()
    };
    let short = speedup(1024, 1024);
    let long = speedup(4096, 4096);
    assert!(long > short, "seq2seq: {short} -> {long}");
    assert!(long > 1.2);
}

/// Sparse training keeps near-inference gains (the backward softmax shares
/// the §5.1 pathology), and dense training gains are positive but smaller.
#[test]
fn sparse_training_gains() {
    let speedup = |model: &ModelConfig| -> f64 {
        let base = run_training_iteration(model, &RunParams::new(L), a100()).unwrap();
        let sdf = run_training_iteration(
            model,
            &RunParams::new(L).strategy(SoftmaxStrategy::Recomposed),
            a100(),
        )
        .unwrap();
        base.total_time_s() / sdf.total_time_s()
    };
    let bert = speedup(&ModelConfig::bert_large());
    let bigbird = speedup(&ModelConfig::bigbird_large());
    assert!(bert > 1.05, "dense training {bert}");
    assert!(bigbird > 1.3, "sparse training {bigbird}");
    assert!(bigbird > bert);
}

/// The block-sparse online kernel agrees with the block-sparse pipeline.
#[test]
fn block_sparse_online_numerics() {
    use resoftmax::kernels::bs_online_attention;
    let l = 128;
    let layout = pattern::bigbird(
        l,
        &BigBirdConfig {
            block: 16,
            ..Default::default()
        },
    );
    let q = randn_matrix::<f64>(l, 16, 1.0, 800);
    let k = randn_matrix::<f64>(l, 16, 1.0, 801);
    let v = randn_matrix::<f64>(l, 16, 1.0, 802);
    let online = bs_online_attention(&q, &k, &v, &layout, 0.25).unwrap();
    let mut scores = sddmm(&q, &k, &layout).unwrap();
    for block in scores.blocks_mut() {
        use resoftmax::tensor::scale;
        *block = scale(block, 0.25);
    }
    let reference = spmm(&block_sparse_softmax(&scores), &v).unwrap();
    assert!(max_abs_diff(&reference, &online) < 1e-5);
}
