//! Offline vendored substitute for `rand_chacha` (see `vendor/README.md`).
//!
//! Provides [`ChaCha8Rng`] with the construction path this workspace uses
//! (`SeedableRng::seed_from_u64`). The workspace needs a *deterministic,
//! statistically sound* stream — nothing depends on matching the real
//! ChaCha8 keystream — so the core is SplitMix64, which passes the
//! moment/tolerance checks in the test suite while staying dependency-free.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG (stand-in for the real ChaCha8 stream cipher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that small seeds (0, 1, 2, ...) land in distant states.
        let mut rng = ChaCha8Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        rng.next_u64();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = ChaCha8Rng::seed_from_u64(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = ChaCha8Rng::seed_from_u64(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bits_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        let frac = f64::from(ones) / f64::from(total);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
