//! Offline vendored substitute for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored serde's value-tree data model, without `syn`/`quote`: the item
//! is parsed by hand from the raw token stream. Supported item shapes are
//! exactly those this workspace uses — non-generic structs (named, tuple,
//! unit) and non-generic enums with unit, tuple and struct variants — and
//! the encoding matches serde's defaults (externally tagged enums,
//! transparent newtypes), so JSON produced here round-trips like the real
//! thing. Unsupported shapes (generics, unions, `#[serde(...)]` attributes)
//! fail the build with a clear message instead of miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The parsed shape of the item being derived.
enum Item {
    /// `struct S { f1: T1, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T1, ...);` — a count is all the codegen needs.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { A, B(T), C { f: T } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive substitute generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

/// Consumes attributes (`#[...]`, including expanded doc comments) from the
/// front of `toks` at position `i`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

/// Consumes a `pub` / `pub(crate)` / `pub(in ...)` visibility qualifier.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive does not support generic types ({name})"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match toks.get(i) {
            None => Ok(Item::UnitStruct { name }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item::TupleStruct { name, arity })
            }
            other => Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body for {name}: {other:?}")),
        },
        other => Err(format!(
            "vendored serde_derive supports only structs and enums, found `{other}`"
        )),
    }
}

/// Extracts field names from `f1: T1, f2: T2, ...` (types are skipped with
/// angle-bracket depth tracking; the codegen never needs them).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while let Some(t) = toks.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "vendored serde_derive does not support explicit discriminants ({name})"
                ))
            }
            None => {}
            other => return Err(format!("expected `,` after variant, found {other:?}")),
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{\n    serde::Value::Object(vec![{}])\n  }}\n}}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            // Newtype structs are transparent, as in real serde.
            "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{\n    serde::Serialize::to_value(&self.0)\n  }}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{\n    serde::Value::Array(vec![{}])\n  }}\n}}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(x0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(x{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{\n    match self {{\n      {}\n    }}\n  }}\n}}",
                arms.join(",\n      ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\")?)?")
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n    let obj = v.as_object().ok_or_else(|| serde::DeError::new(\"expected object for {name}\"))?;\n    Ok({name} {{ {} }})\n  }}\n}}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n    Ok({name}(serde::Deserialize::from_value(v)?))\n  }}\n}}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Deserialize::from_value(&arr[{k}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n    let arr = v.as_array().ok_or_else(|| serde::DeError::new(\"expected array for {name}\"))?;\n    if arr.len() != {arity} {{ return Err(serde::DeError::new(\"wrong tuple arity for {name}\")); }}\n    Ok({name}({}))\n  }}\n}}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n  fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {{ Ok({name}) }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0})", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(serde::Deserialize::from_value(payload)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&arr[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let arr = payload.as_array().ok_or_else(|| serde::DeError::new(\"expected array payload for {name}::{vn}\"))?; if arr.len() != {n} {{ return Err(serde::DeError::new(\"wrong arity for {name}::{vn}\")); }} return Ok({name}::{vn}({})); }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\")?)?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let obj = payload.as_object().ok_or_else(|| serde::DeError::new(\"expected object payload for {name}::{vn}\"))?; return Ok({name}::{vn} {{ {} }}); }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n    if let Some(s) = v.as_str() {{\n      match s {{\n        {unit}\n        ,_ => return Err(serde::DeError::new(format!(\"unknown unit variant `{{s}}` for {name}\")))\n      }}\n    }}\n    if let Some(obj_outer) = v.as_object() {{\n      if obj_outer.len() == 1 {{\n        let (tag, payload) = &obj_outer[0];\n        match tag.as_str() {{\n          {tagged}\n          ,_ => return Err(serde::DeError::new(format!(\"unknown variant `{{tag}}` for {name}\")))\n        }}\n      }}\n    }}\n    Err(serde::DeError::new(\"expected externally tagged enum for {name}\"))\n  }}\n}}",
                unit = if unit_arms.is_empty() {
                    "_ => return Err(serde::DeError::new(\"no unit variants\"))".to_string()
                } else {
                    unit_arms.join(",\n        ")
                },
                tagged = if tagged_arms.is_empty() {
                    "_ => return Err(serde::DeError::new(\"no tagged variants\"))".to_string()
                } else {
                    tagged_arms.join(",\n          ")
                },
            )
        }
    }
}
