//! Offline vendored substitute for `serde_json` (see `vendor/README.md`).
//!
//! Renders and parses JSON text over the vendored serde's [`Value`] tree.
//! Mirrors the real crate's observable behaviour for this workspace's
//! usage: `to_string` / `to_string_pretty` / `from_str`, a [`Value`] with
//! indexing and comparison sugar, shortest-round-trip float formatting
//! (so `x == from_str(&to_string(&x))` for finite floats), and an error
//! on non-finite numbers.

use std::fmt::Write as _;

pub use serde::Value;

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float (JSON cannot
/// represent NaN/infinity, matching real serde_json).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Returns [`Error`] on non-finite floats.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type (including [`Value`]).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writing

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float"));
            }
            // `{:?}` is Rust's shortest exact round-trip representation and
            // is valid JSON for finite values.
            let _ = write!(out, "{x:?}");
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !entries.is_empty() {
                newline(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.i) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input at byte {}: {other:?}",
                self.i
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.parse_value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data (no astral-plane strings).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte aware).
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::I64(1), Value::F64(2.5)]),
            ),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2.5],"b":"x\"y"}"#);
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"name":"qk","vals":[1,-2,3.75,1e3],"flag":true,"none":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["name"], "qk");
        assert_eq!(v["vals"][0].as_u64(), Some(1));
        assert_eq!(v["vals"][1].as_i64(), Some(-2));
        assert_eq!(v["vals"][2].as_f64(), Some(3.75));
        assert_eq!(v["vals"][3].as_f64(), Some(1000.0));
        assert_eq!(v["flag"], true);
        assert_eq!(v["none"], Value::Null);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 6.02e23, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::I64(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }
}
