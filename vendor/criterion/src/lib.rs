//! Offline vendored substitute for `criterion` (see `vendor/README.md`).
//!
//! Implements the authoring surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box` — over a
//! deliberately small wall-clock harness: a fixed warm-up followed by a few
//! timed samples, reporting the per-iteration median to stdout. No
//! statistics, plots, or baselines; the point is that `cargo bench`
//! compiles, runs, and prints believable numbers in the hermetic container.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversions accepted wherever an id is expected.
pub trait IntoBenchmarkId {
    /// Converts into a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: u32,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median of several samples.
    // Named for parity with the real criterion API, which this crate
    // substitutes for offline; it does not return an iterator there either.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (also resolves lazy init)
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(None, &id.into_benchmark_id(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.sample_size,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.sample_size,
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group (printing-only in this harness).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, samples: u32, mut f: F) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    match b.last {
        Some(t) => println!("{label:<50} time: {}", human(t)),
        None => println!("{label:<50} (no iter() call)"),
    }
}

fn human(t: Duration) -> String {
    let ns = t.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("f", 8), |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
