//! Offline vendored substitute for `rayon` (see `vendor/README.md`).
//!
//! The workspace uses rayon only as a drop-in data-parallel iterator over
//! row chunks (`par_chunks_mut(..).enumerate().for_each(..)`), always with
//! order-independent bodies. This substitute returns the standard
//! sequential iterators, which satisfy the same contract (every chunk
//! visited exactly once) minus the parallel speedup — acceptable in the
//! hermetic build, where correctness tests, not wall-clock, are the gate.

pub mod prelude {
    //! Rayon's one-stop import, re-exporting the slice traits.
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    //! Parallel operations on slices (sequential fallbacks).

    /// Mutable slice chunking with rayon's method names.
    pub trait ParallelSliceMut<T> {
        /// Yields non-overlapping mutable chunks of length `chunk_size`
        /// (last may be shorter). Sequential stand-in for rayon's
        /// `ParChunksMut`; `std::slice::ChunksMut` offers the same
        /// `enumerate`/`for_each` combinators through `Iterator`.
        ///
        /// # Panics
        ///
        /// Panics if `chunk_size` is zero (as both std and rayon do).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += 1 + i as u32;
            }
        });
        assert_eq!(data, [1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }
}
