//! Offline vendored substitute for `rayon` (see `vendor/README.md`).
//!
//! The workspace uses rayon only as a data-parallel iterator over row
//! chunks (`par_chunks_mut(..).enumerate().for_each(..)`), always with
//! order-independent bodies over disjoint chunks. This substitute keeps
//! that exact call-site surface but delegates execution to the
//! `resoftmax-parallel` work-stealing pool, so every existing call site
//! runs genuinely parallel — with bit-identical results at any thread
//! count, because chunk bodies never share output state (see `DESIGN.md`
//! §8 for the determinism contract).
//!
//! `RESOFTMAX_THREADS=1` (or a single-core host) degrades to the same
//! sequential visitation the previous stub performed.

pub mod prelude {
    //! Rayon's one-stop import, re-exporting the slice traits.
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    //! Parallel operations on slices, backed by `resoftmax-parallel`.

    /// Mutable slice chunking with rayon's method names.
    pub trait ParallelSliceMut<T: Send> {
        /// Yields non-overlapping mutable chunks of length `chunk_size`
        /// (last may be shorter) for parallel consumption via
        /// [`ParChunksMut::for_each`] or
        /// [`EnumerateParChunksMut::for_each`].
        ///
        /// # Panics
        ///
        /// `for_each` panics if `chunk_size` is zero (as rayon does).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                data: self,
                chunk_size,
            }
        }
    }

    /// Pending parallel iteration over mutable chunks (rayon's
    /// `ChunksMut` parallel iterator, reduced to the combinators the
    /// workspace uses).
    pub struct ParChunksMut<'a, T> {
        data: &'a mut [T],
        chunk_size: usize,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
            EnumerateParChunksMut { inner: self }
        }

        /// Runs `f` on every chunk, in parallel across the pool.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            resoftmax_parallel::parallel_chunks_mut(self.data, self.chunk_size, |_, chunk| {
                f(chunk);
            });
        }
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct EnumerateParChunksMut<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    impl<T: Send> EnumerateParChunksMut<'_, T> {
        /// Runs `f` on every `(index, chunk)` pair, in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            resoftmax_parallel::parallel_chunks_mut(
                self.inner.data,
                self.inner.chunk_size,
                |i, chunk| f((i, chunk)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += 1 + i as u32;
            }
        });
        assert_eq!(data, [1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn unenumerated_for_each_visits_every_chunk() {
        let mut data = vec![0u8; 7];
        data.par_chunks_mut(2).for_each(|chunk| chunk.fill(9));
        assert_eq!(data, [9; 7]);
    }

    #[test]
    fn large_input_matches_sequential_reference() {
        resoftmax_parallel::set_thread_override(Some(4));
        let mut par: Vec<f64> = (0..20_000).map(|i| f64::from(i) * 0.25).collect();
        let mut ser = par.clone();
        par.par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = x.sqrt() + i as f64;
            }
        });
        resoftmax_parallel::set_thread_override(None);
        for (i, chunk) in ser.chunks_mut(17).enumerate() {
            for x in chunk {
                *x = x.sqrt() + i as f64;
            }
        }
        assert_eq!(par, ser);
    }
}
