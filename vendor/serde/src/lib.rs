//! Offline vendored substitute for the `serde` crate.
//!
//! This workspace builds in a hermetic container with no access to
//! crates.io, so the handful of external dependencies are vendored as
//! minimal but *functional* re-implementations (see `vendor/README.md`).
//!
//! The substitute keeps serde's two-trait surface (`Serialize` /
//! `Deserialize`, with same-named derive macros) but swaps the
//! visitor/format machinery for a concrete in-memory [`Value`] tree:
//! serializing produces a `Value`, deserializing consumes one. The
//! companion `serde_json` substitute renders and parses that tree using
//! the same data model as real serde_json (externally tagged enums,
//! newtype transparency), so round-trip tests written against real serde
//! behave identically here.

/// An in-memory JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer beyond `i64::MAX`, or any non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion-ordered (like serde_json's `preserve_order`).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The contained array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contained object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The contained string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::U64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The contained bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object field lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys index to `Null`, matching serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Out-of-range indices resolve to `Null`, matching serde_json.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a description.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting a [`DeError`] on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// Re-export the derive macros under the trait names, as real serde does
// with its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// Looks up a required field in object entries (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] when the field is absent.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // f32 -> f64 -> f32 is lossless, so truncation is exact round-trip.
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected pair"))?;
        if a.len() != 2 {
            return Err(DeError::new("expected array of length 2"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn indexing_matches_serde_json_semantics() {
        let v = Value::Object(vec![(
            "a".into(),
            Value::Array(vec![Value::Str("x".into())]),
        )]);
        assert_eq!(v["a"][0], "x");
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"][99], Value::Null);
    }

    #[test]
    fn integer_range_errors() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
