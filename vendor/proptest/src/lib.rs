//! Offline vendored substitute for `proptest` (see `vendor/README.md`).
//!
//! Keeps proptest's authoring surface — `proptest!` with `pat in strategy`
//! arguments, `Strategy` combinators, `any::<T>()`, `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*` family — over a much simpler
//! runner: each test executes `ProptestConfig::cases` random cases from a
//! generator seeded deterministically by the test's module path and name.
//! There is no shrinking; a failing case reports its index and message, and
//! re-running reproduces it exactly (the stream is seeded, not
//! time-derived).

pub mod test_runner {
    //! Configuration and the deterministic case generator.

    /// Per-test configuration (`cases` is the only knob this runner reads).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases (matching real proptest's helper).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic random source (SplitMix64) used by strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's qualified name), so
        /// every test gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "TestRng::below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// How many times filtering combinators retry before giving up.
    const FILTER_ATTEMPTS: usize = 10_000;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, retrying
        /// otherwise (`reason` is reported if retries are exhausted).
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        /// Keeps only values satisfying `pred`, retrying otherwise.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..FILTER_ATTEMPTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_ATTEMPTS {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len());
            self.arms[k].generate(rng)
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start
                        .wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    range_strategy_float!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
    );
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (all representable values).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Arbitrary bit patterns: includes NaN/infinities, like proptest.
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions over random inputs.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a test running
/// `cases` deterministic random cases. `prop_assert*` failures report the
/// case index; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)) => {};
    (@impl ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, msg,
                    );
                }
            }
        }
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
                left, right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
                left, right, ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right` (both: `{:?}`)",
                left,
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            // No resampling in this runner: an unmet assumption passes the
            // case, trading coverage for simplicity.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..500 {
            let a = (5usize..10).generate(&mut rng);
            assert!((5..10).contains(&a));
            let b = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&b));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let gen_seq = || {
            let mut rng = crate::test_runner::TestRng::from_name("x");
            (0..5)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(), gen_seq());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end((a, b) in (0usize..50, 0usize..50), v in crate::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(a < 50 && b < 50);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn oneof_and_combinators(x in prop_oneof![Just(1u32), Just(2), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
            prop_assume!(x != 1);
            prop_assert_ne!(x, 1);
        }
    }
}
