//! Offline vendored substitute for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`distributions::Uniform`] sampling via
//! [`distributions::Distribution`], and [`seq::SliceRandom::choose_multiple`].
//! The repo's tests assert statistical tolerances and self-consistency, not
//! golden values, so matching rand's exact output streams is not required —
//! only determinism in the seed and reasonable distribution quality.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience extension over [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: distributions::SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_uniform(range.start, range.end, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod distributions {
    //! Sampling distributions (uniform only).

    use super::RngCore;

    /// Types that can draw samples of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Creates a uniform distribution over `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty, matching rand 0.8.
        pub fn new(low: X, high: X) -> Uniform<X> {
            assert!(low.lt(&high), "Uniform::new called with low >= high");
            Uniform { low, high }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_uniform(self.low, self.high, rng)
        }
    }

    /// Scalars that support uniform range sampling.
    pub trait SampleUniform: Copy {
        /// Draws a uniform sample from `[low, high)`.
        fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Strict ordering used for range validation.
        fn lt(&self, other: &Self) -> bool;
    }

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            // 53 uniform mantissa bits in [0, 1).
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + unit * (high - low)
        }
        fn lt(&self, other: &Self) -> bool {
            self < other
        }
    }

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            low + unit * (high - low)
        }
        fn lt(&self, other: &Self) -> bool {
            self < other
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    // Modulo bias is ≤ span/2^64: negligible for the spans in
                    // this workspace (all far below 2^32).
                    let span = (high as i128 - low as i128) as u128;
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
                fn lt(&self, other: &Self) -> bool {
                    self < other
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{distributions::SampleUniform, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Chooses `amount` distinct elements uniformly without replacement
        /// (all of them, in random order, when `amount >= len`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = usize::sample_uniform(i, idx.len(), rng);
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::seq::SliceRandom;
    use super::RngCore;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn uniform_f64_in_range() {
        let d = Uniform::new(-2.0f64, 3.0);
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "low >= high")]
    fn empty_uniform_panics() {
        let _ = Uniform::new(1.0f64, 1.0);
    }

    #[test]
    fn choose_multiple_is_distinct_subset() {
        let items: Vec<usize> = (0..20).collect();
        let mut rng = Counter(3);
        let picked: Vec<usize> = items.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "duplicates in {picked:?}");
        assert!(picked.iter().all(|x| items.contains(x)));
    }

    #[test]
    fn choose_multiple_clamps_to_len() {
        let items = [1, 2, 3];
        let mut rng = Counter(9);
        assert_eq!(items.choose_multiple(&mut rng, 10).count(), 3);
    }
}
